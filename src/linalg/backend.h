#ifndef FEDGTA_LINALG_BACKEND_H_
#define FEDGTA_LINALG_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fedgta {
namespace linalg {

/// Strided read-only view of a dense GEMM operand. Covers all four
/// transpose combinations with one kernel: an untransposed operand has
/// row_stride == cols, col_stride == 1; a transposed one swaps them.
struct GemmView {
  const float* base = nullptr;
  int64_t row_stride = 0;
  int64_t col_stride = 0;
  float At(int64_t r, int64_t c) const {
    return base[r * row_stride + c * col_stride];
  }
};

/// One validated GEMM invocation: C = alpha * A_eff * B_eff + beta * C with
/// A_eff m x k, B_eff k x n, C row-major m x n (leading dimension n). The
/// dispatch layer (ops.cc) checks shapes; backends may assume consistency.
struct GemmCall {
  GemmView a;
  GemmView b;
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;
  float alpha = 1.0f;
  float beta = 0.0f;
  float* c = nullptr;
};

/// One validated SpMM invocation: out = A * dense where A is CSR
/// (rows x inner), dense is row-major inner x f, out is row-major rows x f.
/// Kernels OVERWRITE the rows they are assigned (they must not rely on
/// `out` being pre-zeroed — the dispatch layer hands them reusable scratch).
struct SpmmCall {
  const int64_t* row_ptr = nullptr;
  const int32_t* col_idx = nullptr;
  const float* values = nullptr;
  const float* dense = nullptr;
  int64_t f = 0;
  float* out = nullptr;
};

/// A kernel backend: the compute substrate every dense/sparse hot path in
/// the library runs on (local GNN training, Eq. 3 label propagation, Eq. 5
/// moments, evaluation). Implementations register under a name and are
/// selected process-wide via FEDGTA_BACKEND / --backend / SetActiveBackend.
///
/// Contracts every backend must honor:
///  * Row-range kernels (GemmRows / SpmmRows / RowSoftmaxRows) are invoked
///    by the dispatch layer over disjoint row ranges, possibly concurrently
///    from the shared thread pool. They may only write output rows inside
///    their range.
///  * Determinism within a backend: for a fixed backend, the value written
///    for output element (i, j) must not depend on where the row-range
///    boundaries fall. In practice: accumulate over k (GEMM) or stored
///    entries (SpMM) in an order fixed by the element, never by the chunk.
///    This keeps multi-threaded runs bit-identical to serial ones per
///    backend (ParallelDeterminismTest relies on it).
///  * Cross-backend results only need to agree within floating-point
///    reassociation tolerance (the equivalence suite uses 1e-4 relative).
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name ("reference", "blocked", "simd", ...).
  virtual std::string_view name() const = 0;

  /// Human-readable variant actually running, e.g. "simd(avx2+fma)" vs
  /// "simd(portable)" after runtime CPU dispatch. Defaults to name().
  virtual std::string description() const { return std::string(name()); }

  /// Computes rows [row_begin, row_end) of call.c.
  virtual void GemmRows(const GemmCall& call, int64_t row_begin,
                        int64_t row_end) const = 0;

  /// Computes (overwrites) rows [row_begin, row_end) of call.out.
  virtual void SpmmRows(const SpmmCall& call, int64_t row_begin,
                        int64_t row_end) const = 0;

  /// y += alpha * x. Base implementation is the portable scalar loop.
  virtual void Axpy(float alpha, std::span<const float> x,
                    std::span<float> y) const;

  /// Double-precision dot product of equal-length float vectors.
  virtual double Dot(std::span<const float> a,
                     std::span<const float> b) const;

  /// Numerically stable softmax over rows [row_begin, row_end) of a
  /// row-major rows x cols buffer, in place.
  virtual void RowSoftmaxRows(float* data, int64_t cols, int64_t row_begin,
                              int64_t row_end) const;

  /// out[j] = sum over rows of data[r*cols + j]; `out` has length cols and
  /// is overwritten.
  virtual void ColumnSums(const float* data, int64_t rows, int64_t cols,
                          float* out) const;
};

/// Registers a backend factory under `name` (later registrations replace
/// earlier ones; instances are created lazily and cached). The three
/// built-ins — "reference", "blocked", "simd" — are always registered.
void RegisterBackend(std::string name,
                     std::function<std::unique_ptr<Backend>()> factory);

/// Sorted names of every registered backend.
std::vector<std::string> ListBackends();

/// Backend registered under `name`, or nullptr when unknown.
const Backend* FindBackend(std::string_view name);

/// The process-wide backend all kernels dispatch through. On first use the
/// FEDGTA_BACKEND environment variable picks the backend (unset/empty =
/// "reference"); an unknown name aborts with the available list. Selection
/// is recorded in the metrics registry as
/// `linalg.backend.selected.<name>`.
const Backend& ActiveBackend();

/// Replaces the process-wide backend. InvalidArgument on unknown names.
/// Must not be called while kernels are in flight (intended for startup
/// flag handling, tests, and bench sweeps between timed sections).
Status SetActiveBackend(std::string_view name);

/// name() of ActiveBackend().
std::string_view ActiveBackendName();

/// RAII backend override for tests and benchmarks: selects `name` (which
/// must exist) on construction and restores the previous backend on
/// destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(std::string_view name);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::string previous_;
};

namespace internal {
/// Built-in backend factories (registered automatically; exposed so the
/// registry can construct them without static-initialization-order games).
std::unique_ptr<Backend> MakeReferenceBackend();
std::unique_ptr<Backend> MakeBlockedBackend();
std::unique_ptr<Backend> MakeSimdBackend();
}  // namespace internal

}  // namespace linalg
}  // namespace fedgta

#endif  // FEDGTA_LINALG_BACKEND_H_
