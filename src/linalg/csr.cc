#include "linalg/csr.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "linalg/backend.h"
#include "obs/phase.h"

namespace fedgta {

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             std::vector<CooEntry> entries) {
  FEDGTA_CHECK_GE(rows, 0);
  FEDGTA_CHECK_GE(cols, 0);
  for (const CooEntry& e : entries) {
    FEDGTA_CHECK(e.row >= 0 && e.row < rows)
        << "COO row out of range: " << e.row;
    FEDGTA_CHECK(e.col >= 0 && e.col < cols)
        << "COO col out of range: " << e.col;
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    float sum = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(sum);
    ++m.row_ptr_[static_cast<size_t>(entries[i].row) + 1];
    i = j;
  }
  for (int64_t r = 0; r < rows; ++r) {
    m.row_ptr_[static_cast<size_t>(r) + 1] += m.row_ptr_[static_cast<size_t>(r)];
  }
  return m;
}

CsrMatrix CsrMatrix::FromParts(int64_t rows, int64_t cols,
                               std::vector<int64_t> row_ptr,
                               std::vector<int32_t> col_idx,
                               std::vector<float> values) {
  FEDGTA_CHECK_EQ(row_ptr.size(), static_cast<size_t>(rows) + 1);
  FEDGTA_CHECK_EQ(col_idx.size(), values.size());
  FEDGTA_CHECK_EQ(row_ptr.front(), 0);
  FEDGTA_CHECK_EQ(row_ptr.back(), static_cast<int64_t>(col_idx.size()));
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    FEDGTA_CHECK_LE(row_ptr[r], row_ptr[r + 1]);
  }
  for (int32_t c : col_idx) FEDGTA_CHECK(c >= 0 && c < cols);
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(static_cast<size_t>(rows_), 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    float s = 0.0f;
    for (float v : RowValues(r)) s += v;
    sums[static_cast<size_t>(r)] = s;
  }
  return sums;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<int64_t> t_row_ptr(static_cast<size_t>(cols_) + 1, 0);
  for (int32_t c : col_idx_) ++t_row_ptr[static_cast<size_t>(c) + 1];
  for (int64_t c = 0; c < cols_; ++c) {
    t_row_ptr[static_cast<size_t>(c) + 1] += t_row_ptr[static_cast<size_t>(c)];
  }
  std::vector<int32_t> t_col_idx(col_idx_.size());
  std::vector<float> t_values(values_.size());
  std::vector<int64_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int32_t c = col_idx_[static_cast<size_t>(p)];
      const int64_t dst = cursor[static_cast<size_t>(c)]++;
      t_col_idx[static_cast<size_t>(dst)] = static_cast<int32_t>(r);
      t_values[static_cast<size_t>(dst)] = values_[static_cast<size_t>(p)];
    }
  }
  return FromParts(cols_, rows_, std::move(t_row_ptr), std::move(t_col_idx),
                   std::move(t_values));
}

void CsrMatrix::Multiply(const Matrix& dense, Matrix* out) const {
  FEDGTA_PHASE_SCOPE("spmm");
  FEDGTA_CHECK(out != nullptr);
  FEDGTA_CHECK_EQ(dense.rows(), cols_);
  const int64_t f = dense.cols();
  // Backend kernels overwrite the rows they are assigned, so existing
  // storage can be reused without a zero-fill (label propagation feeds the
  // same scratch matrix back in every hop).
  out->EnsureShape(rows_, f);
  if (rows_ == 0) return;

  linalg::SpmmCall call;
  call.row_ptr = row_ptr_.data();
  call.col_idx = col_idx_.data();
  call.values = values_.data();
  call.dense = dense.data();
  call.f = f;
  call.out = out->data();
  const linalg::Backend& backend = linalg::ActiveBackend();

  const int64_t nnz = row_ptr_.back();
  if (nnz * f < (1 << 16)) {
    backend.SpmmRows(call, 0, rows_);
    return;
  }

  // Row bins balanced by nnz rather than by row count: power-law graphs put
  // most of the work in a few dense rows, and uniform row chunks would leave
  // all but one worker idle. Each bin is a disjoint row range and kernels
  // have a chunk-invariant per-element order, so the output is identical for
  // any binning — including the inline fallback when this SpMM already runs
  // on a pool worker (per-client training under the round executor).
  const int64_t num_bins = std::min<int64_t>(
      rows_, std::max<int64_t>(1, int64_t{4} * GlobalThreadPoolSize()));
  if (num_bins <= 1) {
    backend.SpmmRows(call, 0, rows_);
    return;
  }
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(num_bins) + 1);
  bounds.push_back(0);
  const int64_t target = (nnz + num_bins - 1) / num_bins;
  int64_t next = target;
  for (int64_t r = 1; r < rows_; ++r) {
    if (row_ptr_[static_cast<size_t>(r)] >= next &&
        static_cast<int64_t>(bounds.size()) < num_bins) {
      bounds.push_back(r);
      next = row_ptr_[static_cast<size_t>(r)] + target;
    }
  }
  bounds.push_back(rows_);
  ParallelForChunked(
      0, static_cast<int64_t>(bounds.size()) - 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t bin = lo; bin < hi; ++bin) {
          backend.SpmmRows(call, bounds[static_cast<size_t>(bin)],
                           bounds[static_cast<size_t>(bin) + 1]);
        }
      },
      /*min_chunk=*/1);
}

Matrix CsrMatrix::operator*(const Matrix& dense) const {
  Matrix out;
  Multiply(dense, &out);
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out(r, col_idx_[static_cast<size_t>(p)]) += values_[static_cast<size_t>(p)];
    }
  }
  return out;
}

}  // namespace fedgta
