#ifndef FEDGTA_LINALG_CSR_H_
#define FEDGTA_LINALG_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace fedgta {

/// One entry of a sparse matrix in coordinate form.
struct CooEntry {
  int32_t row;
  int32_t col;
  float value;
};

/// Compressed-sparse-row float matrix. Used for (normalized) adjacency
/// matrices; SpMM against dense feature matrices is the core propagation
/// kernel of every GNN in this library.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) {}

  /// Builds from COO entries. Duplicate (row, col) entries are summed.
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           std::vector<CooEntry> entries);

  /// Builds directly from validated CSR arrays (row_ptr size rows+1,
  /// col_idx/values size nnz, columns strictly in range).
  static CsrMatrix FromParts(int64_t rows, int64_t cols,
                             std::vector<int64_t> row_ptr,
                             std::vector<int32_t> col_idx,
                             std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Column indices / values of row r.
  std::span<const int32_t> RowCols(int64_t r) const {
    FEDGTA_DCHECK(r >= 0 && r < rows_);
    return {col_idx_.data() + row_ptr_[r],
            static_cast<size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }
  std::span<const float> RowValues(int64_t r) const {
    FEDGTA_DCHECK(r >= 0 && r < rows_);
    return {values_.data() + row_ptr_[r],
            static_cast<size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Number of stored entries in row r.
  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Sum of values per row.
  std::vector<float> RowSums() const;

  /// Transposed copy.
  CsrMatrix Transposed() const;

  /// out = this * dense (parallel over rows). `dense` must have rows() ==
  /// this->cols(); `out` is resized to rows() x dense.cols().
  void Multiply(const Matrix& dense, Matrix* out) const;

  /// Convenience wrapper returning the product.
  Matrix operator*(const Matrix& dense) const;

  /// Dense copy, for tests.
  Matrix ToDense() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace fedgta

#endif  // FEDGTA_LINALG_CSR_H_
