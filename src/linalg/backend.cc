#include "linalg/backend.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace fedgta {
namespace linalg {

// ---------------------------------------------------------------------------
// Backend base: portable scalar defaults for the vector ops. Kept bitwise
// identical to the pre-backend-API loops in ops.cc so the "reference"
// backend is a faithful oracle.

void Backend::Axpy(float alpha, std::span<const float> x,
                   std::span<float> y) const {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double Backend::Dot(std::span<const float> a, std::span<const float> b) const {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

void Backend::RowSoftmaxRows(float* data, int64_t cols, int64_t row_begin,
                             int64_t row_end) const {
  for (int64_t r = row_begin; r < row_end; ++r) {
    float* row = data + r * cols;
    float max_v = row[0];
    for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
    float sum = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void Backend::ColumnSums(const float* data, int64_t rows, int64_t cols,
                         float* out) const {
  std::fill(out, out + cols, 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    for (int64_t c = 0; c < cols; ++c) out[c] += row[c];
  }
}

// ---------------------------------------------------------------------------
// Registry. A single mutex-guarded map of factories plus a cache of
// constructed instances; the active backend is a plain pointer read on the
// hot path (selection happens at startup / between runs, never while
// kernels are in flight — see SetActiveBackend's contract).

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::function<std::unique_ptr<Backend>()>,
           std::less<>>
      factories;
  std::map<std::string, std::unique_ptr<Backend>, std::less<>> instances;
  /// Lock-free hot-path read; writes happen under `mutex`.
  std::atomic<const Backend*> active{nullptr};

  Registry() {
    factories["reference"] = internal::MakeReferenceBackend;
    factories["blocked"] = internal::MakeBlockedBackend;
    factories["simd"] = internal::MakeSimdBackend;
  }

  // Caller holds `mutex`.
  const Backend* GetLocked(std::string_view name) {
    auto it = instances.find(name);
    if (it != instances.end()) return it->second.get();
    auto factory = factories.find(name);
    if (factory == factories.end()) return nullptr;
    std::unique_ptr<Backend> backend = factory->second();
    const Backend* raw = backend.get();
    instances.emplace(std::string(name), std::move(backend));
    return raw;
  }
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

void RecordSelection(const Backend& backend) {
  GlobalMetrics()
      .GetCounter(std::string("linalg.backend.selected.") +
                  std::string(backend.name()))
      .Increment();
}

std::string JoinBackendNames() {
  std::string names;
  for (const std::string& name : ListBackends()) {
    if (!names.empty()) names += " ";
    names += name;
  }
  return names;
}

}  // namespace

void RegisterBackend(std::string name,
                     std::function<std::unique_ptr<Backend>()> factory) {
  FEDGTA_CHECK(!name.empty());
  FEDGTA_CHECK(factory != nullptr);
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.instances.find(name);
  if (it != registry.instances.end()) {
    FEDGTA_CHECK(registry.active.load(std::memory_order_acquire) !=
                 it->second.get())
        << "cannot re-register the active backend '" << name << "'";
    registry.instances.erase(it);
  }
  registry.factories[std::move(name)] = std::move(factory);
}

std::vector<std::string> ListBackends() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, factory] : registry.factories) {
    names.push_back(name);
  }
  return names;
}

const Backend* FindBackend(std::string_view name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.GetLocked(name);
}

const Backend& ActiveBackend() {
  Registry& registry = GlobalRegistry();
  const Backend* fast = registry.active.load(std::memory_order_acquire);
  if (fast != nullptr) return *fast;

  const Backend* selected = nullptr;
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    selected = registry.active.load(std::memory_order_acquire);
    if (selected == nullptr) {
      const char* env = std::getenv("FEDGTA_BACKEND");
      const std::string_view requested =
          (env != nullptr && env[0] != '\0') ? std::string_view(env)
                                             : std::string_view("reference");
      selected = registry.GetLocked(requested);
      FEDGTA_CHECK(selected != nullptr)
          << "FEDGTA_BACKEND names an unknown kernel backend: '" << requested
          << "' (have: " << JoinBackendNames() << ")";
      registry.active.store(selected, std::memory_order_release);
      first = true;
    }
  }
  if (first) {
    RecordSelection(*selected);
    FEDGTA_LOG(INFO) << "linalg backend: " << selected->description();
  }
  return *selected;
}

Status SetActiveBackend(std::string_view name) {
  Registry& registry = GlobalRegistry();
  const Backend* backend = nullptr;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    backend = registry.GetLocked(name);
    if (backend != nullptr) {
      changed = registry.active.load(std::memory_order_acquire) != backend;
      registry.active.store(backend, std::memory_order_release);
    }
  }
  if (backend == nullptr) {
    return InvalidArgumentError("unknown backend: " + std::string(name) +
                                " (have: " + JoinBackendNames() + ")");
  }
  if (changed) RecordSelection(*backend);
  return OkStatus();
}

std::string_view ActiveBackendName() { return ActiveBackend().name(); }

ScopedBackend::ScopedBackend(std::string_view name)
    : previous_(ActiveBackendName()) {
  const Status status = SetActiveBackend(name);
  FEDGTA_CHECK(status.ok()) << status.ToString();
}

ScopedBackend::~ScopedBackend() {
  const Status status = SetActiveBackend(previous_);
  FEDGTA_CHECK(status.ok()) << status.ToString();
}

}  // namespace linalg
}  // namespace fedgta
