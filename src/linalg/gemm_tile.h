#ifndef FEDGTA_LINALG_GEMM_TILE_H_
#define FEDGTA_LINALG_GEMM_TILE_H_

// Shared cache-blocked GEMM driver for the "blocked" and "simd" backends.
//
// Classic three-level tiling (BLIS-style): B is packed into KC x NC panels
// of NR-wide column strips, A into MC x KC blocks of MR-tall row strips,
// and an MR x NR register-blocked microkernel runs over the packed panels.
// Panels are zero-padded to full MR / NR so the microkernel never branches
// on edges; the store step writes only the live mr x nr window.
//
// Determinism contract (see Backend): for each output element the
// accumulation order is k-panel-major (pc = 0, KC, 2KC, ...) with strictly
// ascending k inside each panel — a function of the fixed KC constant only,
// never of where the caller's [row_begin, row_end) chunk boundaries fall.
// Results are therefore bit-identical for any thread count / chunking.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "linalg/backend.h"

namespace fedgta {
namespace linalg {
namespace internal {

/// Cache-blocking constants shared by every tiled backend. KC * NR floats
/// of packed B live in L1 during a microkernel run; MC * KC floats of
/// packed A target L2; KC * NC floats of packed B target L3.
inline constexpr int64_t kGemmKC = 256;
inline constexpr int64_t kGemmMC = 96;
inline constexpr int64_t kGemmNC = 512;

/// Per-thread packing scratch, reused across calls to avoid allocation in
/// the hot path. Thread-local: pool workers pack independently.
struct GemmPackBuffers {
  std::vector<float> a;  // MC x KC, MR-strip layout
  std::vector<float> b;  // KC x NC, NR-strip layout
};

inline GemmPackBuffers& ThreadGemmPackBuffers() {
  thread_local GemmPackBuffers buffers;
  return buffers;
}

/// Packs B[pc : pc+kc, jc : jc+nc] (via the strided view) into NR-wide
/// strips: strip j0 occupies bp[j0 * kc ...] with layout [kk][NR],
/// zero-padded to NR columns.
template <int NR>
void PackBPanel(const GemmView& b, int64_t pc, int64_t jc, int64_t kc,
                int64_t nc, float* bp) {
  for (int64_t j0 = 0; j0 < nc; j0 += NR) {
    const int64_t nr = std::min<int64_t>(NR, nc - j0);
    float* strip = bp + j0 * kc;
    for (int64_t kk = 0; kk < kc; ++kk) {
      float* dst = strip + kk * NR;
      const int64_t brow = pc + kk;
      for (int64_t j = 0; j < nr; ++j) dst[j] = b.At(brow, jc + j0 + j);
      for (int64_t j = nr; j < NR; ++j) dst[j] = 0.0f;
    }
  }
}

/// Packs A[ic : ic+mc, pc : pc+kc] into MR-tall strips: strip i0 occupies
/// ap[i0 * kc ...] with layout [kk][MR], zero-padded to MR rows.
template <int MR>
void PackABlock(const GemmView& a, int64_t ic, int64_t pc, int64_t mc,
                int64_t kc, float* ap) {
  for (int64_t i0 = 0; i0 < mc; i0 += MR) {
    const int64_t mr = std::min<int64_t>(MR, mc - i0);
    float* strip = ap + i0 * kc;
    for (int64_t kk = 0; kk < kc; ++kk) {
      float* dst = strip + kk * MR;
      const int64_t acol = pc + kk;
      for (int64_t i = 0; i < mr; ++i) dst[i] = a.At(ic + i0 + i, acol);
      for (int64_t i = mr; i < MR; ++i) dst[i] = 0.0f;
    }
  }
}

/// Tiled GEMM over output rows [row_begin, row_end).
///
/// Traits requirements:
///   static constexpr int MR, NR;
///   // acc (MR x NR row-major) = sum_{kk < kc} ap[kk*MR + i] * bp[kk*NR + j]
///   static void Micro(const float* ap, const float* bp, int64_t kc,
///                     float* acc);
template <class Traits>
void TiledGemmRows(const GemmCall& call, int64_t row_begin, int64_t row_end) {
  constexpr int MR = Traits::MR;
  constexpr int NR = Traits::NR;
  const int64_t n = call.n;
  const int64_t k = call.k;
  if (row_begin >= row_end || n == 0) return;
  if (k == 0) {
    // Degenerate inner dimension: C = beta * C.
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* c_row = call.c + i * n;
      if (call.beta == 0.0f) {
        std::fill(c_row, c_row + n, 0.0f);
      } else if (call.beta != 1.0f) {
        for (int64_t j = 0; j < n; ++j) c_row[j] *= call.beta;
      }
    }
    return;
  }

  GemmPackBuffers& buffers = ThreadGemmPackBuffers();
  buffers.b.resize(static_cast<size_t>(kGemmKC) *
                   ((kGemmNC + NR - 1) / NR * NR));
  buffers.a.resize(static_cast<size_t>(kGemmKC) *
                   ((kGemmMC + MR - 1) / MR * MR));
  alignas(64) float acc[MR * NR];

  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min<int64_t>(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKC) {
      const int64_t kc = std::min<int64_t>(kGemmKC, k - pc);
      const bool first_panel = pc == 0;
      PackBPanel<NR>(call.b, pc, jc, kc, nc, buffers.b.data());
      for (int64_t ic = row_begin; ic < row_end; ic += kGemmMC) {
        const int64_t mc = std::min<int64_t>(kGemmMC, row_end - ic);
        PackABlock<MR>(call.a, ic, pc, mc, kc, buffers.a.data());
        for (int64_t j0 = 0; j0 < nc; j0 += NR) {
          const int64_t nr = std::min<int64_t>(NR, nc - j0);
          const float* bp = buffers.b.data() + j0 * kc;
          for (int64_t i0 = 0; i0 < mc; i0 += MR) {
            const int64_t mr = std::min<int64_t>(MR, mc - i0);
            Traits::Micro(buffers.a.data() + i0 * kc, bp, kc, acc);
            // Merge the live mr x nr window into C. The first k-panel
            // applies beta; later panels accumulate.
            for (int64_t i = 0; i < mr; ++i) {
              float* c_row = call.c + (ic + i0 + i) * n + jc + j0;
              const float* acc_row = acc + i * NR;
              if (first_panel) {
                if (call.beta == 0.0f) {
                  for (int64_t j = 0; j < nr; ++j) {
                    c_row[j] = call.alpha * acc_row[j];
                  }
                } else {
                  for (int64_t j = 0; j < nr; ++j) {
                    c_row[j] =
                        call.beta * c_row[j] + call.alpha * acc_row[j];
                  }
                }
              } else {
                for (int64_t j = 0; j < nr; ++j) {
                  c_row[j] += call.alpha * acc_row[j];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace internal
}  // namespace linalg
}  // namespace fedgta

#endif  // FEDGTA_LINALG_GEMM_TILE_H_
