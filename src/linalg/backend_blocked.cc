// The "blocked" kernel backend: cache-tiled, register-blocked GEMM over
// packed panels (see gemm_tile.h) and an unrolled CSR SpMM, written in
// portable scalar C++ so the compiler's autovectorizer can do the SIMD work.
// Explicit intrinsics live in backend_simd.cc.

#include <algorithm>

#include "linalg/backend.h"
#include "linalg/gemm_tile.h"

namespace fedgta {
namespace linalg {
namespace {

/// 4x8 scalar microkernel. NR = 8 contiguous floats per row lets gcc/clang
/// vectorize the j loop; MR = 4 keeps the live accumulators within the
/// register budget even without AVX.
struct ScalarMicroTraits {
  static constexpr int MR = 4;
  static constexpr int NR = 8;

  static void Micro(const float* ap, const float* bp, int64_t kc,
                    float* acc) {
    float local[MR * NR] = {};
    for (int64_t p = 0; p < kc; ++p) {
      const float* a = ap + p * MR;
      const float* b = bp + p * NR;
      for (int i = 0; i < MR; ++i) {
        const float ai = a[i];
        for (int j = 0; j < NR; ++j) local[i * NR + j] += ai * b[j];
      }
    }
    std::copy(local, local + MR * NR, acc);
  }
};

class BlockedBackend : public Backend {
 public:
  std::string_view name() const override { return "blocked"; }

  void GemmRows(const GemmCall& call, int64_t row_begin,
                int64_t row_end) const override {
    internal::TiledGemmRows<ScalarMicroTraits>(call, row_begin, row_end);
  }

  void SpmmRows(const SpmmCall& call, int64_t row_begin,
                int64_t row_end) const override {
    const int64_t f = call.f;
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* dst = call.out + r * f;
      std::fill(dst, dst + f, 0.0f);
      const int64_t begin = call.row_ptr[r];
      const int64_t end = call.row_ptr[r + 1];
      int64_t p = begin;
      // Process stored entries four at a time: one pass over dst per group
      // instead of four. Per-element accumulation order stays the fixed
      // "ascending stored-entry" order required by the determinism
      // contract because the groups are anchored at `begin`, not at any
      // chunk boundary.
      for (; p + 4 <= end; p += 4) {
        const float w0 = call.values[p];
        const float w1 = call.values[p + 1];
        const float w2 = call.values[p + 2];
        const float w3 = call.values[p + 3];
        const float* s0 =
            call.dense + static_cast<int64_t>(call.col_idx[p]) * f;
        const float* s1 =
            call.dense + static_cast<int64_t>(call.col_idx[p + 1]) * f;
        const float* s2 =
            call.dense + static_cast<int64_t>(call.col_idx[p + 2]) * f;
        const float* s3 =
            call.dense + static_cast<int64_t>(call.col_idx[p + 3]) * f;
        for (int64_t j = 0; j < f; ++j) {
          dst[j] += ((w0 * s0[j] + w1 * s1[j]) + (w2 * s2[j] + w3 * s3[j]));
        }
      }
      for (; p < end; ++p) {
        const float w = call.values[p];
        const float* src =
            call.dense + static_cast<int64_t>(call.col_idx[p]) * f;
        for (int64_t j = 0; j < f; ++j) dst[j] += w * src[j];
      }
    }
  }
};

}  // namespace

namespace internal {
std::unique_ptr<Backend> MakeBlockedBackend() {
  return std::make_unique<BlockedBackend>();
}
}  // namespace internal

}  // namespace linalg
}  // namespace fedgta
