// The "reference" kernel backend: the original straightforward loops, kept
// as the correctness oracle every other backend is tested against. Must
// stay simple enough to audit by eye — performance work belongs in
// backend_blocked.cc / backend_simd.cc.

#include <algorithm>

#include "linalg/backend.h"

namespace fedgta {
namespace linalg {
namespace {

class ReferenceBackend : public Backend {
 public:
  std::string_view name() const override { return "reference"; }

  void GemmRows(const GemmCall& call, int64_t row_begin,
                int64_t row_end) const override {
    const int64_t n = call.n;
    const int64_t k = call.k;
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* c_row = call.c + i * n;
      if (call.beta == 0.0f) {
        std::fill(c_row, c_row + n, 0.0f);
      } else if (call.beta != 1.0f) {
        for (int64_t j = 0; j < n; ++j) c_row[j] *= call.beta;
      }
      // ikj loop order: stream through B rows when B is untransposed
      // (col_stride == 1), the common case.
      for (int64_t p = 0; p < k; ++p) {
        const float a_ip = call.alpha * call.a.At(i, p);
        if (a_ip == 0.0f) continue;
        if (call.b.col_stride == 1) {
          const float* b_row = call.b.base + p * call.b.row_stride;
          for (int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
        } else {
          for (int64_t j = 0; j < n; ++j) c_row[j] += a_ip * call.b.At(p, j);
        }
      }
    }
  }

  void SpmmRows(const SpmmCall& call, int64_t row_begin,
                int64_t row_end) const override {
    const int64_t f = call.f;
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* dst = call.out + r * f;
      std::fill(dst, dst + f, 0.0f);
      for (int64_t p = call.row_ptr[r]; p < call.row_ptr[r + 1]; ++p) {
        const float w = call.values[p];
        const float* src =
            call.dense + static_cast<int64_t>(call.col_idx[p]) * f;
        for (int64_t j = 0; j < f; ++j) dst[j] += w * src[j];
      }
    }
  }
};

}  // namespace

namespace internal {
std::unique_ptr<Backend> MakeReferenceBackend() {
  return std::make_unique<ReferenceBackend>();
}
}  // namespace internal

}  // namespace linalg
}  // namespace fedgta
