#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "obs/phase.h"

namespace fedgta {
namespace {

// Serial kernel computing rows [row_begin, row_end) of
// C = alpha * A_eff * B_eff + beta * C for the no-transpose layout, where
// A_eff is m x k and B_eff is k x n, both accessed through strides so the
// same kernel serves all four transpose combinations.
struct StridedView {
  const float* base;
  int64_t row_stride;
  int64_t col_stride;
  float At(int64_t r, int64_t c) const {
    return base[r * row_stride + c * col_stride];
  }
};

void GemmRows(const StridedView& a, const StridedView& b, float alpha,
              float beta, int64_t k, Matrix* c, int64_t row_begin,
              int64_t row_end) {
  const int64_t n = c->cols();
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* c_row = c->data() + i * n;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
    // ikj loop order: stream through B rows when B is untransposed
    // (col_stride == 1), the common case.
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = alpha * a.At(i, p);
      if (a_ip == 0.0f) continue;
      if (b.col_stride == 1) {
        const float* b_row = b.base + p * b.row_stride;
        for (int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
      } else {
        for (int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b.At(p, j);
      }
    }
  }
}

}  // namespace

void Gemm(const Matrix& a, Transpose trans_a, const Matrix& b,
          Transpose trans_b, float alpha, float beta, Matrix* c) {
  FEDGTA_PHASE_SCOPE("gemm");
  FEDGTA_CHECK(c != nullptr);
  const int64_t m = trans_a == Transpose::kNo ? a.rows() : a.cols();
  const int64_t ka = trans_a == Transpose::kNo ? a.cols() : a.rows();
  const int64_t kb = trans_b == Transpose::kNo ? b.rows() : b.cols();
  const int64_t n = trans_b == Transpose::kNo ? b.cols() : b.rows();
  FEDGTA_CHECK_EQ(ka, kb) << "GEMM inner dimensions mismatch";
  FEDGTA_CHECK_EQ(c->rows(), m);
  FEDGTA_CHECK_EQ(c->cols(), n);

  const StridedView av{a.data(),
                       trans_a == Transpose::kNo ? a.cols() : int64_t{1},
                       trans_a == Transpose::kNo ? int64_t{1} : a.cols()};
  const StridedView bv{b.data(),
                       trans_b == Transpose::kNo ? b.cols() : int64_t{1},
                       trans_b == Transpose::kNo ? int64_t{1} : b.cols()};

  const int64_t work = m * n * ka;
  if (work < (1 << 16)) {
    GemmRows(av, bv, alpha, beta, ka, c, 0, m);
    return;
  }
  // Each chunk writes disjoint output rows and GemmRows is row-independent,
  // so the result is identical for any chunking — including the inline
  // single-chunk execution ParallelForChunked falls back to when this GEMM
  // already runs on a pool worker (a client task of the round executor).
  ParallelForChunked(
      0, m,
      [&](int64_t lo, int64_t hi) { GemmRows(av, bv, alpha, beta, ka, c, lo, hi); },
      /*min_chunk=*/std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, n * ka)));
}

Matrix MatMul(const Matrix& a, const Matrix& b, Transpose trans_a,
              Transpose trans_b) {
  const int64_t m = trans_a == Transpose::kNo ? a.rows() : a.cols();
  const int64_t n = trans_b == Transpose::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  Gemm(a, trans_a, b, trans_b, 1.0f, 0.0f, &c);
  return c;
}

void AddRowBroadcast(const Matrix& bias, Matrix* m) {
  FEDGTA_CHECK(m != nullptr);
  FEDGTA_CHECK_EQ(bias.rows(), 1);
  FEDGTA_CHECK_EQ(bias.cols(), m->cols());
  const int64_t cols = m->cols();
  const float* b = bias.data();
  for (int64_t r = 0; r < m->rows(); ++r) {
    float* row = m->data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] += b[c];
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* acc = out.data();
  const int64_t cols = m.cols();
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) acc[c] += row[c];
  }
  return out;
}

void RowSoftmaxInPlace(Matrix* m) {
  FEDGTA_CHECK(m != nullptr);
  const int64_t cols = m->cols();
  if (cols == 0) return;
  ParallelForChunked(0, m->rows(), [m, cols](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = m->data() + r * cols;
      float max_v = row[0];
      for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
      float sum = 0.0f;
      for (int64_t c = 0; c < cols; ++c) {
        row[c] = std::exp(row[c] - max_v);
        sum += row[c];
      }
      const float inv = 1.0f / sum;
      for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
    }
  });
}

std::vector<int> RowArgmax(const Matrix& m) {
  std::vector<int> out(static_cast<size_t>(m.rows()));
  const int64_t cols = m.cols();
  FEDGTA_CHECK_GT(cols, 0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * cols;
    int best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

void ReluInPlace(Matrix* m) {
  FEDGTA_CHECK(m != nullptr);
  float* data = m->data();
  const int64_t size = m->size();
  for (int64_t i = 0; i < size; ++i) data[i] = std::max(0.0f, data[i]);
}

void ReluBackwardInPlace(const Matrix& pre_activation, Matrix* grad) {
  FEDGTA_CHECK(grad != nullptr);
  FEDGTA_CHECK_EQ(pre_activation.rows(), grad->rows());
  FEDGTA_CHECK_EQ(pre_activation.cols(), grad->cols());
  const float* pre = pre_activation.data();
  float* g = grad->data();
  const int64_t size = grad->size();
  for (int64_t i = 0; i < size; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

void DropoutForward(float rate, Rng& rng, Matrix* m, Matrix* mask) {
  FEDGTA_CHECK(m != nullptr && mask != nullptr);
  FEDGTA_CHECK_GE(rate, 0.0f);
  FEDGTA_CHECK_LT(rate, 1.0f);
  mask->Resize(m->rows(), m->cols());
  if (rate == 0.0f) {
    mask->Fill(1.0f);
    return;
  }
  const float keep_scale = 1.0f / (1.0f - rate);
  float* data = m->data();
  float* mk = mask->data();
  const int64_t size = m->size();
  for (int64_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(rate)) {
      mk[i] = 0.0f;
      data[i] = 0.0f;
    } else {
      mk[i] = keep_scale;
      data[i] *= keep_scale;
    }
  }
}

void DropoutBackward(const Matrix& mask, Matrix* grad) {
  FEDGTA_CHECK(grad != nullptr);
  FEDGTA_CHECK_EQ(mask.rows(), grad->rows());
  FEDGTA_CHECK_EQ(mask.cols(), grad->cols());
  const float* mk = mask.data();
  float* g = grad->data();
  const int64_t size = grad->size();
  for (int64_t i = 0; i < size; ++i) g[i] *= mk[i];
}

double Dot(std::span<const float> a, std::span<const float> b) {
  FEDGTA_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

double L2Norm(std::span<const float> a) { return std::sqrt(Dot(a, a)); }

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = L2Norm(a);
  const double nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FEDGTA_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void RowNormalizeInPlace(Matrix* m, bool l1) {
  FEDGTA_CHECK(m != nullptr);
  const int64_t cols = m->cols();
  for (int64_t r = 0; r < m->rows(); ++r) {
    float* row = m->data() + r * cols;
    double norm = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      norm += l1 ? std::fabs(row[j]) : static_cast<double>(row[j]) * row[j];
    }
    if (!l1) norm = std::sqrt(norm);
    if (norm <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace fedgta
