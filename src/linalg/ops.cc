#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/backend.h"
#include "obs/phase.h"

namespace fedgta {

void Gemm(const Matrix& a, Transpose trans_a, const Matrix& b,
          Transpose trans_b, float alpha, float beta, Matrix* c) {
  FEDGTA_PHASE_SCOPE("gemm");
  FEDGTA_CHECK(c != nullptr);
  const int64_t m = trans_a == Transpose::kNo ? a.rows() : a.cols();
  const int64_t ka = trans_a == Transpose::kNo ? a.cols() : a.rows();
  const int64_t kb = trans_b == Transpose::kNo ? b.rows() : b.cols();
  const int64_t n = trans_b == Transpose::kNo ? b.cols() : b.rows();
  FEDGTA_CHECK_EQ(ka, kb) << "GEMM inner dimensions mismatch";
  FEDGTA_CHECK_EQ(c->rows(), m);
  FEDGTA_CHECK_EQ(c->cols(), n);

  linalg::GemmCall call;
  call.a = {a.data(), trans_a == Transpose::kNo ? a.cols() : int64_t{1},
            trans_a == Transpose::kNo ? int64_t{1} : a.cols()};
  call.b = {b.data(), trans_b == Transpose::kNo ? b.cols() : int64_t{1},
            trans_b == Transpose::kNo ? int64_t{1} : b.cols()};
  call.m = m;
  call.n = n;
  call.k = ka;
  call.alpha = alpha;
  call.beta = beta;
  call.c = c->data();

  const linalg::Backend& backend = linalg::ActiveBackend();
  const int64_t work = m * n * ka;
  if (work < (1 << 16)) {
    backend.GemmRows(call, 0, m);
    return;
  }
  // Each chunk writes disjoint output rows and every backend's GemmRows is
  // row-independent with a chunk-invariant per-element accumulation order,
  // so the result is identical for any chunking — including the inline
  // single-chunk execution ParallelForChunked falls back to when this GEMM
  // already runs on a pool worker (a client task of the round executor).
  ParallelForChunked(
      0, m,
      [&](int64_t lo, int64_t hi) { backend.GemmRows(call, lo, hi); },
      /*min_chunk=*/std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, n * ka)));
}

void GemmRowBlockABt(const Matrix& a, int64_t row_begin, int64_t row_end,
                     const Matrix& b, Matrix* c) {
  FEDGTA_PHASE_SCOPE("gemm");
  FEDGTA_CHECK(c != nullptr);
  FEDGTA_CHECK(row_begin >= 0 && row_begin <= row_end &&
               row_end <= a.rows());
  FEDGTA_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = row_end - row_begin;
  const int64_t n = b.rows();
  const int64_t k = a.cols();
  FEDGTA_CHECK_EQ(c->rows(), m);
  FEDGTA_CHECK_EQ(c->cols(), n);
  if (m == 0 || n == 0) return;

  linalg::GemmCall call;
  call.a = {a.data() + row_begin * k, k, 1};
  call.b = {b.data(), 1, k};  // transposed view, as MatMul(.., kYes) builds
  call.m = m;
  call.n = n;
  call.k = k;
  call.alpha = 1.0f;
  call.beta = 0.0f;
  call.c = c->data();

  const linalg::Backend& backend = linalg::ActiveBackend();
  if (m * n * k < (1 << 16)) {
    backend.GemmRows(call, 0, m);
    return;
  }
  ParallelForChunked(
      0, m,
      [&](int64_t lo, int64_t hi) { backend.GemmRows(call, lo, hi); },
      /*min_chunk=*/std::max<int64_t>(
          1, (1 << 15) / std::max<int64_t>(1, n * k)));
}

Matrix MatMul(const Matrix& a, const Matrix& b, Transpose trans_a,
              Transpose trans_b) {
  const int64_t m = trans_a == Transpose::kNo ? a.rows() : a.cols();
  const int64_t n = trans_b == Transpose::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  Gemm(a, trans_a, b, trans_b, 1.0f, 0.0f, &c);
  return c;
}

void AddRowBroadcast(const Matrix& bias, Matrix* m) {
  FEDGTA_CHECK(m != nullptr);
  FEDGTA_CHECK_EQ(bias.rows(), 1);
  FEDGTA_CHECK_EQ(bias.cols(), m->cols());
  const int64_t cols = m->cols();
  const float* b = bias.data();
  for (int64_t r = 0; r < m->rows(); ++r) {
    float* row = m->data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] += b[c];
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  linalg::ActiveBackend().ColumnSums(m.data(), m.rows(), m.cols(),
                                     out.data());
  return out;
}

void RowSoftmaxInPlace(Matrix* m) {
  FEDGTA_CHECK(m != nullptr);
  const int64_t cols = m->cols();
  if (cols == 0) return;
  const linalg::Backend& backend = linalg::ActiveBackend();
  float* data = m->data();
  ParallelForChunked(0, m->rows(),
                     [&backend, data, cols](int64_t lo, int64_t hi) {
                       backend.RowSoftmaxRows(data, cols, lo, hi);
                     });
}

std::vector<int> RowArgmax(const Matrix& m) {
  std::vector<int> out(static_cast<size_t>(m.rows()));
  const int64_t cols = m.cols();
  FEDGTA_CHECK_GT(cols, 0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * cols;
    int best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

void ReluInPlace(Matrix* m) {
  FEDGTA_CHECK(m != nullptr);
  float* data = m->data();
  const int64_t size = m->size();
  for (int64_t i = 0; i < size; ++i) data[i] = std::max(0.0f, data[i]);
}

void ReluBackwardInPlace(const Matrix& pre_activation, Matrix* grad) {
  FEDGTA_CHECK(grad != nullptr);
  FEDGTA_CHECK_EQ(pre_activation.rows(), grad->rows());
  FEDGTA_CHECK_EQ(pre_activation.cols(), grad->cols());
  const float* pre = pre_activation.data();
  float* g = grad->data();
  const int64_t size = grad->size();
  for (int64_t i = 0; i < size; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

void DropoutForward(float rate, Rng& rng, Matrix* m, Matrix* mask) {
  FEDGTA_CHECK(m != nullptr && mask != nullptr);
  FEDGTA_CHECK_GE(rate, 0.0f);
  FEDGTA_CHECK_LT(rate, 1.0f);
  // Every element of the mask is written below, so the cheaper
  // contents-unspecified resize is safe here.
  mask->EnsureShape(m->rows(), m->cols());
  if (rate == 0.0f) {
    mask->Fill(1.0f);
    return;
  }
  const float keep_scale = 1.0f / (1.0f - rate);
  float* data = m->data();
  float* mk = mask->data();
  const int64_t size = m->size();
  for (int64_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(rate)) {
      mk[i] = 0.0f;
      data[i] = 0.0f;
    } else {
      mk[i] = keep_scale;
      data[i] *= keep_scale;
    }
  }
}

void DropoutBackward(const Matrix& mask, Matrix* grad) {
  FEDGTA_CHECK(grad != nullptr);
  FEDGTA_CHECK_EQ(mask.rows(), grad->rows());
  FEDGTA_CHECK_EQ(mask.cols(), grad->cols());
  const float* mk = mask.data();
  float* g = grad->data();
  const int64_t size = grad->size();
  for (int64_t i = 0; i < size; ++i) g[i] *= mk[i];
}

double Dot(std::span<const float> a, std::span<const float> b) {
  FEDGTA_CHECK_EQ(a.size(), b.size());
  return linalg::ActiveBackend().Dot(a, b);
}

double L2Norm(std::span<const float> a) { return std::sqrt(Dot(a, a)); }

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = L2Norm(a);
  const double nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FEDGTA_CHECK_EQ(x.size(), y.size());
  linalg::ActiveBackend().Axpy(alpha, x, y);
}

void RowNormalizeInPlace(Matrix* m, bool l1) {
  FEDGTA_CHECK(m != nullptr);
  const int64_t cols = m->cols();
  for (int64_t r = 0; r < m->rows(); ++r) {
    float* row = m->data() + r * cols;
    double norm = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      norm += l1 ? std::fabs(row[j]) : static_cast<double>(row[j]) * row[j];
    }
    if (!l1) norm = std::sqrt(norm);
    if (norm <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace fedgta
