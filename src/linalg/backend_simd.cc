// The "simd" kernel backend: explicit AVX2/FMA kernels selected at runtime
// via cpuid, with a portable scalar fallback so the backend is always
// registered and always correct. The binary is compiled for the baseline
// ISA; the AVX2 paths are isolated behind `target("avx2,fma")` function
// attributes and only entered when __builtin_cpu_supports says so.

#include <algorithm>
#include <cstdint>

#include "linalg/backend.h"
#include "linalg/gemm_tile.h"

#if defined(__x86_64__) || defined(__i386__)
#define FEDGTA_SIMD_X86 1
#include <immintrin.h>
#else
#define FEDGTA_SIMD_X86 0
#endif

namespace fedgta {
namespace linalg {
namespace {

/// Portable fallback microkernel (same shape as the blocked backend's):
/// used when the CPU lacks AVX2/FMA or on non-x86 builds.
struct PortableMicroTraits {
  static constexpr int MR = 4;
  static constexpr int NR = 8;

  static void Micro(const float* ap, const float* bp, int64_t kc,
                    float* acc) {
    float local[MR * NR] = {};
    for (int64_t p = 0; p < kc; ++p) {
      const float* a = ap + p * MR;
      const float* b = bp + p * NR;
      for (int i = 0; i < MR; ++i) {
        const float ai = a[i];
        for (int j = 0; j < NR; ++j) local[i * NR + j] += ai * b[j];
      }
    }
    std::copy(local, local + MR * NR, acc);
  }
};

#if FEDGTA_SIMD_X86

/// 8x8 AVX2/FMA microkernel: eight ymm accumulators, one broadcast per A
/// element, one fused multiply-add per (row, B-vector) pair.
struct Avx2MicroTraits {
  static constexpr int MR = 8;
  static constexpr int NR = 8;

  __attribute__((target("avx2,fma"))) static void Micro(const float* ap,
                                                        const float* bp,
                                                        int64_t kc,
                                                        float* acc) {
    __m256 c0 = _mm256_setzero_ps();
    __m256 c1 = _mm256_setzero_ps();
    __m256 c2 = _mm256_setzero_ps();
    __m256 c3 = _mm256_setzero_ps();
    __m256 c4 = _mm256_setzero_ps();
    __m256 c5 = _mm256_setzero_ps();
    __m256 c6 = _mm256_setzero_ps();
    __m256 c7 = _mm256_setzero_ps();
    for (int64_t p = 0; p < kc; ++p) {
      const __m256 b = _mm256_loadu_ps(bp + p * NR);
      const float* a = ap + p * MR;
      c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0), b, c0);
      c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1), b, c1);
      c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2), b, c2);
      c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3), b, c3);
      c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4), b, c4);
      c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5), b, c5);
      c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6), b, c6);
      c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7), b, c7);
    }
    _mm256_storeu_ps(acc + 0 * NR, c0);
    _mm256_storeu_ps(acc + 1 * NR, c1);
    _mm256_storeu_ps(acc + 2 * NR, c2);
    _mm256_storeu_ps(acc + 3 * NR, c3);
    _mm256_storeu_ps(acc + 4 * NR, c4);
    _mm256_storeu_ps(acc + 5 * NR, c5);
    _mm256_storeu_ps(acc + 6 * NR, c6);
    _mm256_storeu_ps(acc + 7 * NR, c7);
  }
};

__attribute__((target("avx2,fma"))) void SpmmRowsAvx2(const SpmmCall& call,
                                                      int64_t row_begin,
                                                      int64_t row_end) {
  const int64_t f = call.f;
  for (int64_t r = row_begin; r < row_end; ++r) {
    float* dst = call.out + r * f;
    std::fill(dst, dst + f, 0.0f);
    const int64_t begin = call.row_ptr[r];
    const int64_t end = call.row_ptr[r + 1];
    int64_t p = begin;
    // Entry pairs anchored at `begin` keep the per-element accumulation
    // order a function of the row alone (determinism contract).
    for (; p + 2 <= end; p += 2) {
      const float w0 = call.values[p];
      const float w1 = call.values[p + 1];
      const __m256 w0v = _mm256_set1_ps(w0);
      const __m256 w1v = _mm256_set1_ps(w1);
      const float* s0 =
          call.dense + static_cast<int64_t>(call.col_idx[p]) * f;
      const float* s1 =
          call.dense + static_cast<int64_t>(call.col_idx[p + 1]) * f;
      int64_t j = 0;
      for (; j + 8 <= f; j += 8) {
        __m256 d = _mm256_loadu_ps(dst + j);
        d = _mm256_fmadd_ps(w0v, _mm256_loadu_ps(s0 + j), d);
        d = _mm256_fmadd_ps(w1v, _mm256_loadu_ps(s1 + j), d);
        _mm256_storeu_ps(dst + j, d);
      }
      for (; j < f; ++j) dst[j] += w0 * s0[j] + w1 * s1[j];
    }
    if (p < end) {
      const float w = call.values[p];
      const __m256 wv = _mm256_set1_ps(w);
      const float* src =
          call.dense + static_cast<int64_t>(call.col_idx[p]) * f;
      int64_t j = 0;
      for (; j + 8 <= f; j += 8) {
        __m256 d = _mm256_loadu_ps(dst + j);
        d = _mm256_fmadd_ps(wv, _mm256_loadu_ps(src + j), d);
        _mm256_storeu_ps(dst + j, d);
      }
      for (; j < f; ++j) dst[j] += w * src[j];
    }
  }
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(float alpha,
                                                  std::span<const float> x,
                                                  std::span<float> y) {
  const __m256 av = _mm256_set1_ps(alpha);
  const size_t size = x.size();
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    __m256 yv = _mm256_loadu_ps(y.data() + i);
    yv = _mm256_fmadd_ps(av, _mm256_loadu_ps(x.data() + i), yv);
    _mm256_storeu_ps(y.data() + i, yv);
  }
  for (; i < size; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) double DotAvx2(std::span<const float> a,
                                                   std::span<const float> b) {
  // Four double lanes: each float lane-pair is widened before the FMA so
  // precision matches the base implementation's double accumulator.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const size_t size = a.size();
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const __m256 af = _mm256_loadu_ps(a.data() + i);
    const __m256 bf = _mm256_loadu_ps(b.data() + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(af));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bf));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(af, 1));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bf, 1));
    acc0 = _mm256_fmadd_pd(alo, blo, acc0);
    acc1 = _mm256_fmadd_pd(ahi, bhi, acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < size; ++i) sum += static_cast<double>(a[i]) * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void ColumnSumsAvx2(const float* data,
                                                        int64_t rows,
                                                        int64_t cols,
                                                        float* out) {
  std::fill(out, out + cols, 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 o = _mm256_add_ps(_mm256_loadu_ps(out + c),
                                     _mm256_loadu_ps(row + c));
      _mm256_storeu_ps(out + c, o);
    }
    for (; c < cols; ++c) out[c] += row[c];
  }
}

bool DetectAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#else  // !FEDGTA_SIMD_X86

bool DetectAvx2Fma() { return false; }

#endif  // FEDGTA_SIMD_X86

class SimdBackend : public Backend {
 public:
  SimdBackend() : use_avx2_(DetectAvx2Fma()) {}

  std::string_view name() const override { return "simd"; }

  std::string description() const override {
    return use_avx2_ ? "simd(avx2+fma)" : "simd(portable)";
  }

  void GemmRows(const GemmCall& call, int64_t row_begin,
                int64_t row_end) const override {
#if FEDGTA_SIMD_X86
    if (use_avx2_) {
      internal::TiledGemmRows<Avx2MicroTraits>(call, row_begin, row_end);
      return;
    }
#endif
    internal::TiledGemmRows<PortableMicroTraits>(call, row_begin, row_end);
  }

  void SpmmRows(const SpmmCall& call, int64_t row_begin,
                int64_t row_end) const override {
#if FEDGTA_SIMD_X86
    if (use_avx2_) {
      SpmmRowsAvx2(call, row_begin, row_end);
      return;
    }
#endif
    const int64_t f = call.f;
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* dst = call.out + r * f;
      std::fill(dst, dst + f, 0.0f);
      for (int64_t p = call.row_ptr[r]; p < call.row_ptr[r + 1]; ++p) {
        const float w = call.values[p];
        const float* src =
            call.dense + static_cast<int64_t>(call.col_idx[p]) * f;
        for (int64_t j = 0; j < f; ++j) dst[j] += w * src[j];
      }
    }
  }

  void Axpy(float alpha, std::span<const float> x,
            std::span<float> y) const override {
#if FEDGTA_SIMD_X86
    if (use_avx2_) {
      AxpyAvx2(alpha, x, y);
      return;
    }
#endif
    Backend::Axpy(alpha, x, y);
  }

  double Dot(std::span<const float> a,
             std::span<const float> b) const override {
#if FEDGTA_SIMD_X86
    if (use_avx2_) return DotAvx2(a, b);
#endif
    return Backend::Dot(a, b);
  }

  void ColumnSums(const float* data, int64_t rows, int64_t cols,
                  float* out) const override {
#if FEDGTA_SIMD_X86
    if (use_avx2_) {
      ColumnSumsAvx2(data, rows, cols, out);
      return;
    }
#endif
    Backend::ColumnSums(data, rows, cols, out);
  }

 private:
  const bool use_avx2_;
};

}  // namespace

namespace internal {
std::unique_ptr<Backend> MakeSimdBackend() {
  return std::make_unique<SimdBackend>();
}
}  // namespace internal

}  // namespace linalg
}  // namespace fedgta
