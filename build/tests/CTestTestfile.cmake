# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fed_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/minibatch_test[1]_include.cmake")
