
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/client.cc" "src/CMakeFiles/fedgta_fed.dir/fed/client.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/client.cc.o.d"
  "/root/repo/src/fed/feddc.cc" "src/CMakeFiles/fedgta_fed.dir/fed/feddc.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/feddc.cc.o.d"
  "/root/repo/src/fed/fedgl.cc" "src/CMakeFiles/fedgta_fed.dir/fed/fedgl.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/fedgl.cc.o.d"
  "/root/repo/src/fed/fedgta_strategy.cc" "src/CMakeFiles/fedgta_fed.dir/fed/fedgta_strategy.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/fedgta_strategy.cc.o.d"
  "/root/repo/src/fed/fedprox.cc" "src/CMakeFiles/fedgta_fed.dir/fed/fedprox.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/fedprox.cc.o.d"
  "/root/repo/src/fed/fedsage.cc" "src/CMakeFiles/fedgta_fed.dir/fed/fedsage.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/fedsage.cc.o.d"
  "/root/repo/src/fed/gcfl_plus.cc" "src/CMakeFiles/fedgta_fed.dir/fed/gcfl_plus.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/gcfl_plus.cc.o.d"
  "/root/repo/src/fed/moon.cc" "src/CMakeFiles/fedgta_fed.dir/fed/moon.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/moon.cc.o.d"
  "/root/repo/src/fed/scaffold.cc" "src/CMakeFiles/fedgta_fed.dir/fed/scaffold.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/scaffold.cc.o.d"
  "/root/repo/src/fed/simulation.cc" "src/CMakeFiles/fedgta_fed.dir/fed/simulation.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/simulation.cc.o.d"
  "/root/repo/src/fed/strategy.cc" "src/CMakeFiles/fedgta_fed.dir/fed/strategy.cc.o" "gcc" "src/CMakeFiles/fedgta_fed.dir/fed/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedgta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
