file(REMOVE_RECURSE
  "CMakeFiles/fedgta_fed.dir/fed/client.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/client.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/feddc.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/feddc.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/fedgl.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/fedgl.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/fedgta_strategy.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/fedgta_strategy.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/fedprox.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/fedprox.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/fedsage.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/fedsage.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/gcfl_plus.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/gcfl_plus.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/moon.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/moon.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/scaffold.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/scaffold.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/simulation.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/simulation.cc.o.d"
  "CMakeFiles/fedgta_fed.dir/fed/strategy.cc.o"
  "CMakeFiles/fedgta_fed.dir/fed/strategy.cc.o.d"
  "libfedgta_fed.a"
  "libfedgta_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
