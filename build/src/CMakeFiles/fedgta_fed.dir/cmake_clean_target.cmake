file(REMOVE_RECURSE
  "libfedgta_fed.a"
)
