# Empty compiler generated dependencies file for fedgta_fed.
# This may be replaced when dependencies are built.
