file(REMOVE_RECURSE
  "libfedgta_nn.a"
)
