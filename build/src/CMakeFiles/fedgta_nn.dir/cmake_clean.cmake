file(REMOVE_RECURSE
  "CMakeFiles/fedgta_nn.dir/nn/linear.cc.o"
  "CMakeFiles/fedgta_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/fedgta_nn.dir/nn/loss.cc.o"
  "CMakeFiles/fedgta_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/fedgta_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/fedgta_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/fedgta_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/fedgta_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/fedgta_nn.dir/nn/parameters.cc.o"
  "CMakeFiles/fedgta_nn.dir/nn/parameters.cc.o.d"
  "libfedgta_nn.a"
  "libfedgta_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
