# Empty dependencies file for fedgta_nn.
# This may be replaced when dependencies are built.
