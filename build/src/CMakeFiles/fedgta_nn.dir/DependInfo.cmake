
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/fedgta_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/fedgta_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/fedgta_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/fedgta_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/fedgta_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/fedgta_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/fedgta_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/fedgta_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/parameters.cc" "src/CMakeFiles/fedgta_nn.dir/nn/parameters.cc.o" "gcc" "src/CMakeFiles/fedgta_nn.dir/nn/parameters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedgta_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
