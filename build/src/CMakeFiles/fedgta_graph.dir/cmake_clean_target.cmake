file(REMOVE_RECURSE
  "libfedgta_graph.a"
)
