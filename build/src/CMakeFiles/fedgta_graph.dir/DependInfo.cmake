
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generator.cc" "src/CMakeFiles/fedgta_graph.dir/graph/generator.cc.o" "gcc" "src/CMakeFiles/fedgta_graph.dir/graph/generator.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/fedgta_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/fedgta_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/CMakeFiles/fedgta_graph.dir/graph/metrics.cc.o" "gcc" "src/CMakeFiles/fedgta_graph.dir/graph/metrics.cc.o.d"
  "/root/repo/src/graph/normalized_adjacency.cc" "src/CMakeFiles/fedgta_graph.dir/graph/normalized_adjacency.cc.o" "gcc" "src/CMakeFiles/fedgta_graph.dir/graph/normalized_adjacency.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/CMakeFiles/fedgta_graph.dir/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/fedgta_graph.dir/graph/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedgta_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
