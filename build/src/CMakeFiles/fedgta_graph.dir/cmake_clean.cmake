file(REMOVE_RECURSE
  "CMakeFiles/fedgta_graph.dir/graph/generator.cc.o"
  "CMakeFiles/fedgta_graph.dir/graph/generator.cc.o.d"
  "CMakeFiles/fedgta_graph.dir/graph/graph.cc.o"
  "CMakeFiles/fedgta_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/fedgta_graph.dir/graph/metrics.cc.o"
  "CMakeFiles/fedgta_graph.dir/graph/metrics.cc.o.d"
  "CMakeFiles/fedgta_graph.dir/graph/normalized_adjacency.cc.o"
  "CMakeFiles/fedgta_graph.dir/graph/normalized_adjacency.cc.o.d"
  "CMakeFiles/fedgta_graph.dir/graph/subgraph.cc.o"
  "CMakeFiles/fedgta_graph.dir/graph/subgraph.cc.o.d"
  "libfedgta_graph.a"
  "libfedgta_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
