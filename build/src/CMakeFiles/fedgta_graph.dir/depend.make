# Empty dependencies file for fedgta_graph.
# This may be replaced when dependencies are built.
