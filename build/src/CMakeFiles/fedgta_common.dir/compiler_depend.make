# Empty compiler generated dependencies file for fedgta_common.
# This may be replaced when dependencies are built.
