file(REMOVE_RECURSE
  "CMakeFiles/fedgta_common.dir/common/logging.cc.o"
  "CMakeFiles/fedgta_common.dir/common/logging.cc.o.d"
  "CMakeFiles/fedgta_common.dir/common/random.cc.o"
  "CMakeFiles/fedgta_common.dir/common/random.cc.o.d"
  "CMakeFiles/fedgta_common.dir/common/status.cc.o"
  "CMakeFiles/fedgta_common.dir/common/status.cc.o.d"
  "CMakeFiles/fedgta_common.dir/common/string_util.cc.o"
  "CMakeFiles/fedgta_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/fedgta_common.dir/common/table.cc.o"
  "CMakeFiles/fedgta_common.dir/common/table.cc.o.d"
  "CMakeFiles/fedgta_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/fedgta_common.dir/common/thread_pool.cc.o.d"
  "libfedgta_common.a"
  "libfedgta_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
