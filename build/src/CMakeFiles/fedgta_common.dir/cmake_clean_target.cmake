file(REMOVE_RECURSE
  "libfedgta_common.a"
)
