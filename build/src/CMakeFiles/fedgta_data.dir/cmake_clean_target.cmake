file(REMOVE_RECURSE
  "libfedgta_data.a"
)
