file(REMOVE_RECURSE
  "CMakeFiles/fedgta_data.dir/data/dataset.cc.o"
  "CMakeFiles/fedgta_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/fedgta_data.dir/data/federated.cc.o"
  "CMakeFiles/fedgta_data.dir/data/federated.cc.o.d"
  "CMakeFiles/fedgta_data.dir/data/registry.cc.o"
  "CMakeFiles/fedgta_data.dir/data/registry.cc.o.d"
  "libfedgta_data.a"
  "libfedgta_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
