# Empty dependencies file for fedgta_data.
# This may be replaced when dependencies are built.
