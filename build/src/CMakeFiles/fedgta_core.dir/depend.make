# Empty dependencies file for fedgta_core.
# This may be replaced when dependencies are built.
