file(REMOVE_RECURSE
  "libfedgta_core.a"
)
