file(REMOVE_RECURSE
  "CMakeFiles/fedgta_core.dir/core/fedgta_metrics.cc.o"
  "CMakeFiles/fedgta_core.dir/core/fedgta_metrics.cc.o.d"
  "CMakeFiles/fedgta_core.dir/core/label_propagation.cc.o"
  "CMakeFiles/fedgta_core.dir/core/label_propagation.cc.o.d"
  "CMakeFiles/fedgta_core.dir/core/moments.cc.o"
  "CMakeFiles/fedgta_core.dir/core/moments.cc.o.d"
  "CMakeFiles/fedgta_core.dir/core/similarity.cc.o"
  "CMakeFiles/fedgta_core.dir/core/similarity.cc.o.d"
  "CMakeFiles/fedgta_core.dir/core/smoothing_confidence.cc.o"
  "CMakeFiles/fedgta_core.dir/core/smoothing_confidence.cc.o.d"
  "libfedgta_core.a"
  "libfedgta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
