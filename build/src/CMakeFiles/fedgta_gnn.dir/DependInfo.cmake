
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/factory.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/factory.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/factory.cc.o.d"
  "/root/repo/src/gnn/gamlp.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/gamlp.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/gamlp.cc.o.d"
  "/root/repo/src/gnn/gbp.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/gbp.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/gbp.cc.o.d"
  "/root/repo/src/gnn/gcn.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/gcn.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/gcn.cc.o.d"
  "/root/repo/src/gnn/model.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/model.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/model.cc.o.d"
  "/root/repo/src/gnn/propagation.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/propagation.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/propagation.cc.o.d"
  "/root/repo/src/gnn/s2gc.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/s2gc.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/s2gc.cc.o.d"
  "/root/repo/src/gnn/sage.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/sage.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/sage.cc.o.d"
  "/root/repo/src/gnn/sgc.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/sgc.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/sgc.cc.o.d"
  "/root/repo/src/gnn/sign.cc" "src/CMakeFiles/fedgta_gnn.dir/gnn/sign.cc.o" "gcc" "src/CMakeFiles/fedgta_gnn.dir/gnn/sign.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedgta_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
