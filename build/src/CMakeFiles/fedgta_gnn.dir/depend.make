# Empty dependencies file for fedgta_gnn.
# This may be replaced when dependencies are built.
