file(REMOVE_RECURSE
  "CMakeFiles/fedgta_gnn.dir/gnn/factory.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/factory.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/gamlp.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/gamlp.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/gbp.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/gbp.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/gcn.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/gcn.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/model.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/model.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/propagation.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/propagation.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/s2gc.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/s2gc.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/sage.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/sage.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/sgc.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/sgc.cc.o.d"
  "CMakeFiles/fedgta_gnn.dir/gnn/sign.cc.o"
  "CMakeFiles/fedgta_gnn.dir/gnn/sign.cc.o.d"
  "libfedgta_gnn.a"
  "libfedgta_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
