file(REMOVE_RECURSE
  "libfedgta_gnn.a"
)
