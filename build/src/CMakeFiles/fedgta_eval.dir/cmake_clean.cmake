file(REMOVE_RECURSE
  "CMakeFiles/fedgta_eval.dir/eval/csv.cc.o"
  "CMakeFiles/fedgta_eval.dir/eval/csv.cc.o.d"
  "CMakeFiles/fedgta_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/fedgta_eval.dir/eval/experiment.cc.o.d"
  "libfedgta_eval.a"
  "libfedgta_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
