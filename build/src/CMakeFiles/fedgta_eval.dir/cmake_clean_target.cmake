file(REMOVE_RECURSE
  "libfedgta_eval.a"
)
