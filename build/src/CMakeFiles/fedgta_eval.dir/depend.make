# Empty dependencies file for fedgta_eval.
# This may be replaced when dependencies are built.
