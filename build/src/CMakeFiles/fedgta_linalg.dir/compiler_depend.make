# Empty compiler generated dependencies file for fedgta_linalg.
# This may be replaced when dependencies are built.
