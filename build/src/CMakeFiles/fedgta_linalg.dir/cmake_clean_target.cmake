file(REMOVE_RECURSE
  "libfedgta_linalg.a"
)
