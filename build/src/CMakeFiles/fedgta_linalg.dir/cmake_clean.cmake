file(REMOVE_RECURSE
  "CMakeFiles/fedgta_linalg.dir/linalg/csr.cc.o"
  "CMakeFiles/fedgta_linalg.dir/linalg/csr.cc.o.d"
  "CMakeFiles/fedgta_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/fedgta_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/fedgta_linalg.dir/linalg/ops.cc.o"
  "CMakeFiles/fedgta_linalg.dir/linalg/ops.cc.o.d"
  "libfedgta_linalg.a"
  "libfedgta_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
