file(REMOVE_RECURSE
  "libfedgta_partition.a"
)
