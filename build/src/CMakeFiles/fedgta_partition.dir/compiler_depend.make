# Empty compiler generated dependencies file for fedgta_partition.
# This may be replaced when dependencies are built.
