file(REMOVE_RECURSE
  "CMakeFiles/fedgta_partition.dir/partition/louvain.cc.o"
  "CMakeFiles/fedgta_partition.dir/partition/louvain.cc.o.d"
  "CMakeFiles/fedgta_partition.dir/partition/metis.cc.o"
  "CMakeFiles/fedgta_partition.dir/partition/metis.cc.o.d"
  "CMakeFiles/fedgta_partition.dir/partition/splitter.cc.o"
  "CMakeFiles/fedgta_partition.dir/partition/splitter.cc.o.d"
  "libfedgta_partition.a"
  "libfedgta_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedgta_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
