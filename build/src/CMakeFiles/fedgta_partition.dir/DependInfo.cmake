
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/louvain.cc" "src/CMakeFiles/fedgta_partition.dir/partition/louvain.cc.o" "gcc" "src/CMakeFiles/fedgta_partition.dir/partition/louvain.cc.o.d"
  "/root/repo/src/partition/metis.cc" "src/CMakeFiles/fedgta_partition.dir/partition/metis.cc.o" "gcc" "src/CMakeFiles/fedgta_partition.dir/partition/metis.cc.o.d"
  "/root/repo/src/partition/splitter.cc" "src/CMakeFiles/fedgta_partition.dir/partition/splitter.cc.o" "gcc" "src/CMakeFiles/fedgta_partition.dir/partition/splitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedgta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
