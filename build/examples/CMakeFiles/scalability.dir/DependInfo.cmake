
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scalability.cpp" "examples/CMakeFiles/scalability.dir/scalability.cpp.o" "gcc" "examples/CMakeFiles/scalability.dir/scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedgta_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedgta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
