# Empty dependencies file for bench_fig3_aggregation.
# This may be replaced when dependencies are built.
