file(REMOVE_RECURSE
  "../bench/bench_table4_inductive"
  "../bench/bench_table4_inductive.pdb"
  "CMakeFiles/bench_table4_inductive.dir/bench_table4_inductive.cc.o"
  "CMakeFiles/bench_table4_inductive.dir/bench_table4_inductive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_inductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
