file(REMOVE_RECURSE
  "../bench/bench_fig6_participation"
  "../bench/bench_fig6_participation.pdb"
  "CMakeFiles/bench_fig6_participation.dir/bench_fig6_participation.cc.o"
  "CMakeFiles/bench_fig6_participation.dir/bench_fig6_participation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
