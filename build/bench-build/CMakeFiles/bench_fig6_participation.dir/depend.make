# Empty dependencies file for bench_fig6_participation.
# This may be replaced when dependencies are built.
