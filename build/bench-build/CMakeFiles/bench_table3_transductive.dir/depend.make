# Empty dependencies file for bench_table3_transductive.
# This may be replaced when dependencies are built.
