file(REMOVE_RECURSE
  "../bench/bench_table3_transductive"
  "../bench/bench_table3_transductive.pdb"
  "CMakeFiles/bench_table3_transductive.dir/bench_table3_transductive.cc.o"
  "CMakeFiles/bench_table3_transductive.dir/bench_table3_transductive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_transductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
