file(REMOVE_RECURSE
  "../bench/bench_table6_ablation"
  "../bench/bench_table6_ablation.pdb"
  "CMakeFiles/bench_table6_ablation.dir/bench_table6_ablation.cc.o"
  "CMakeFiles/bench_table6_ablation.dir/bench_table6_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
