#!/bin/bash
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt > /dev/null
for b in build/bench/*; do
  echo "### RUNNING $b"
  "$b"
  echo
done 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo DONE > /root/repo/.suite_done
