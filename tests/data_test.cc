#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/federated.h"
#include "data/registry.h"
#include "graph/metrics.h"

namespace fedgta {
namespace {

TEST(StratifiedSplitTest, FractionsRespected) {
  std::vector<int> labels;
  for (int i = 0; i < 1000; ++i) labels.push_back(i % 4);
  Rng rng(1);
  std::vector<int32_t> train, val, test;
  StratifiedSplit(labels, 4, 0.2, 0.4, rng, &train, &val, &test);
  EXPECT_EQ(train.size() + val.size() + test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(train.size()), 200.0, 8.0);
  EXPECT_NEAR(static_cast<double>(val.size()), 400.0, 8.0);
}

TEST(StratifiedSplitTest, DisjointAndSorted) {
  std::vector<int> labels(300, 0);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 3);
  Rng rng(2);
  std::vector<int32_t> train, val, test;
  StratifiedSplit(labels, 3, 0.3, 0.3, rng, &train, &val, &test);
  std::set<int32_t> all;
  for (const auto* v : {&train, &val, &test}) {
    EXPECT_TRUE(std::is_sorted(v->begin(), v->end()));
    all.insert(v->begin(), v->end());
  }
  EXPECT_EQ(all.size(), 300u);
}

TEST(StratifiedSplitTest, EveryClassInTrain) {
  std::vector<int> labels{0, 0, 0, 0, 1, 2, 2};
  Rng rng(3);
  std::vector<int32_t> train, val, test;
  StratifiedSplit(labels, 3, 0.1, 0.2, rng, &train, &val, &test);
  std::set<int> classes;
  for (int32_t i : train) classes.insert(labels[static_cast<size_t>(i)]);
  EXPECT_EQ(classes.size(), 3u) << "each present class needs >=1 train node";
}

TEST(StratifiedSplitTest, StratificationBalancesClasses) {
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(0);
  for (int i = 0; i < 900; ++i) labels.push_back(1);
  Rng rng(4);
  std::vector<int32_t> train, val, test;
  StratifiedSplit(labels, 2, 0.5, 0.2, rng, &train, &val, &test);
  int64_t c0 = 0;
  for (int32_t i : train) {
    if (labels[static_cast<size_t>(i)] == 0) ++c0;
  }
  EXPECT_NEAR(static_cast<double>(c0), 50.0, 2.0);
}

TEST(RegistryTest, TwelveDatasetsRegistered) {
  const auto names = ListDatasets();
  EXPECT_EQ(names.size(), 12u);
  for (const char* expected :
       {"cora", "citeseer", "pubmed", "amazon-photo", "amazon-computer",
        "coauthor-cs", "coauthor-physics", "ogbn-arxiv", "ogbn-products",
        "ogbn-papers100m", "flickr", "reddit"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(RegistryTest, UnknownDatasetIsError) {
  EXPECT_FALSE(GetDatasetSpec("imagenet").ok());
  EXPECT_EQ(GetDatasetSpec("imagenet").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, SpecsMatchPaperTable2Protocol) {
  // Class counts must match the paper's Table 2 (except papers100M, scaled).
  EXPECT_EQ(GetDatasetSpec("cora")->sbm.num_classes, 7);
  EXPECT_EQ(GetDatasetSpec("citeseer")->sbm.num_classes, 6);
  EXPECT_EQ(GetDatasetSpec("pubmed")->sbm.num_classes, 3);
  EXPECT_EQ(GetDatasetSpec("amazon-photo")->sbm.num_classes, 8);
  EXPECT_EQ(GetDatasetSpec("amazon-computer")->sbm.num_classes, 10);
  EXPECT_EQ(GetDatasetSpec("coauthor-cs")->sbm.num_classes, 15);
  EXPECT_EQ(GetDatasetSpec("coauthor-physics")->sbm.num_classes, 5);
  EXPECT_EQ(GetDatasetSpec("ogbn-arxiv")->sbm.num_classes, 40);
  EXPECT_EQ(GetDatasetSpec("ogbn-products")->sbm.num_classes, 47);
  EXPECT_EQ(GetDatasetSpec("flickr")->sbm.num_classes, 7);
  EXPECT_EQ(GetDatasetSpec("reddit")->sbm.num_classes, 41);
  // Inductive protocol flags.
  EXPECT_TRUE(GetDatasetSpec("flickr")->inductive);
  EXPECT_TRUE(GetDatasetSpec("reddit")->inductive);
  EXPECT_FALSE(GetDatasetSpec("cora")->inductive);
  // Cora keeps its true node count.
  EXPECT_EQ(GetDatasetSpec("cora")->sbm.num_nodes, 2708);
}

TEST(RegistryTest, MakeDatasetProducesConsistentShapes) {
  const Dataset ds = MakeDatasetByName("citeseer", 7);
  EXPECT_EQ(ds.name, "citeseer");
  EXPECT_EQ(ds.graph.num_nodes(), 3327);
  EXPECT_EQ(ds.features.rows(), 3327);
  EXPECT_EQ(ds.labels.size(), 3327u);
  EXPECT_EQ(ds.num_classes, 6);
  EXPECT_FALSE(ds.train_idx.empty());
  EXPECT_FALSE(ds.val_idx.empty());
  EXPECT_FALSE(ds.test_idx.empty());
  EXPECT_EQ(ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size(),
            3327u);
}

TEST(RegistryTest, DeterministicPerSeed) {
  const Dataset a = MakeDatasetByName("cora", 99);
  const Dataset b = MakeDatasetByName("cora", 99);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.train_idx, b.train_idx);
  EXPECT_TRUE(a.features.AllClose(b.features));
  const Dataset c = MakeDatasetByName("cora", 100);
  EXPECT_NE(a.train_idx, c.train_idx);
}

TEST(RegistryTest, LabelLocalityShrinksTrainSet) {
  // cora uses labeled_region_fraction 0.75: train set should be smaller
  // than the nominal 20% (moved nodes land in test).
  const Dataset ds = MakeDatasetByName("cora", 5);
  EXPECT_LT(static_cast<double>(ds.train_idx.size()), 0.2 * 2708.0);
  EXPECT_GT(static_cast<double>(ds.train_idx.size()), 0.1 * 2708.0);
}

TEST(RegistryTest, HomophilyRegimeMatches) {
  const Dataset cora = MakeDatasetByName("cora", 3);
  EXPECT_GT(EdgeHomophily(cora.graph, cora.labels), 0.6);
  const Dataset flickr = MakeDatasetByName("flickr", 3);
  EXPECT_LT(EdgeHomophily(flickr.graph, flickr.labels), 0.55);
}

class FederatedBuildTest : public ::testing::TestWithParam<SplitMethod> {};

TEST_P(FederatedBuildTest, ClientShardsConsistent) {
  Dataset ds = MakeDatasetByName("cora", 11);
  SplitConfig split;
  split.method = GetParam();
  split.num_clients = 10;
  Rng rng(12);
  const FederatedDataset fed = BuildFederatedDataset(std::move(ds), split, rng);
  EXPECT_EQ(fed.num_clients(), 10);

  int64_t total_nodes = 0;
  int64_t total_train = 0, total_val = 0, total_test = 0;
  for (const ClientData& client : fed.clients) {
    EXPECT_GT(client.num_nodes(), 0);
    EXPECT_EQ(client.features.rows(), client.num_nodes());
    EXPECT_EQ(static_cast<int64_t>(client.labels.size()), client.num_nodes());
    EXPECT_EQ(client.num_classes, fed.global.num_classes);
    total_nodes += client.num_nodes();
    total_train += static_cast<int64_t>(client.train_idx.size());
    total_val += static_cast<int64_t>(client.val_idx.size());
    total_test += static_cast<int64_t>(client.test_idx.size());
    // Local labels and features must match the global node they map to.
    for (int64_t i = 0; i < client.num_nodes(); ++i) {
      const NodeId g = client.sub.global_ids[static_cast<size_t>(i)];
      EXPECT_EQ(client.labels[static_cast<size_t>(i)],
                fed.global.labels[static_cast<size_t>(g)]);
      EXPECT_FLOAT_EQ(client.features(i, 0), fed.global.features(g, 0));
    }
  }
  EXPECT_EQ(total_nodes, fed.global.graph.num_nodes());
  EXPECT_EQ(total_train, static_cast<int64_t>(fed.global.train_idx.size()));
  EXPECT_EQ(total_val, static_cast<int64_t>(fed.global.val_idx.size()));
  EXPECT_EQ(total_test, static_cast<int64_t>(fed.global.test_idx.size()));
  EXPECT_EQ(fed.total_test(), total_test);
  EXPECT_EQ(fed.total_train(), total_train);
}

INSTANTIATE_TEST_SUITE_P(Methods, FederatedBuildTest,
                         ::testing::Values(SplitMethod::kLouvain,
                                           SplitMethod::kMetis));

TEST(FederatedBuildTest, TransductiveTrainGraphEqualsFullGraph) {
  Dataset ds = MakeDatasetByName("cora", 13);
  SplitConfig split;
  split.num_clients = 5;
  Rng rng(14);
  const FederatedDataset fed = BuildFederatedDataset(std::move(ds), split, rng);
  for (const ClientData& client : fed.clients) {
    EXPECT_EQ(client.train_graph.num_edges(), client.sub.graph.num_edges());
  }
}

TEST(FederatedBuildTest, InductiveTrainGraphHidesTestEdges) {
  Dataset ds = MakeDatasetByName("flickr", 13);
  SplitConfig split;
  split.method = SplitMethod::kMetis;
  split.num_clients = 5;
  Rng rng(14);
  const FederatedDataset fed = BuildFederatedDataset(std::move(ds), split, rng);
  for (const ClientData& client : fed.clients) {
    EXPECT_EQ(client.train_graph.num_nodes(), client.sub.graph.num_nodes());
    EXPECT_LE(client.train_graph.num_edges(), client.sub.graph.num_edges());
    // No training-view edge touches a test node.
    std::set<int32_t> test_set(client.test_idx.begin(), client.test_idx.end());
    for (const Edge& e : client.train_graph.UndirectedEdges()) {
      EXPECT_EQ(test_set.count(e.u), 0u);
      EXPECT_EQ(test_set.count(e.v), 0u);
    }
  }
}

TEST(FederatedBuildTest, OverlapReplicationCreatesSharedNodes) {
  Dataset ds = MakeDatasetByName("cora", 17);
  SplitConfig split;
  split.num_clients = 4;
  Rng rng(18);
  FederatedOptions options;
  options.overlap_fraction = 0.1;
  const FederatedDataset fed =
      BuildFederatedDataset(std::move(ds), split, rng, options);
  int64_t total_overlap = 0;
  for (const ClientData& client : fed.clients) {
    total_overlap += static_cast<int64_t>(client.overlap_idx.size());
    for (int32_t i : client.overlap_idx) {
      // Overlap nodes carry no supervision.
      EXPECT_EQ(std::count(client.train_idx.begin(), client.train_idx.end(), i), 0);
      EXPECT_EQ(std::count(client.test_idx.begin(), client.test_idx.end(), i), 0);
    }
  }
  EXPECT_GT(total_overlap, 0);
  // Total nodes now exceed the global count (replicas).
  int64_t total_nodes = 0;
  for (const ClientData& client : fed.clients) total_nodes += client.num_nodes();
  EXPECT_EQ(total_nodes, fed.global.graph.num_nodes() + total_overlap);
}

}  // namespace
}  // namespace fedgta
