// Black-box flag validation of the run_experiment CLI: every rejected
// configuration must exit non-zero with a message naming the offending
// flag, before paying for dataset generation.

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/cli.h"

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult RunCli(const std::string& args) {
  CliResult result;
  const std::string cmd =
      std::string(RUN_EXPERIMENT_BINARY) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    result.output += buf;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void ExpectRejected(const std::string& args, const std::string& needle) {
  const CliResult result = RunCli(args);
  EXPECT_EQ(result.exit_code, 1) << args << "\n" << result.output;
  EXPECT_NE(result.output.find(needle), std::string::npos)
      << args << " printed:\n"
      << result.output;
}

TEST(FlagsTest, HelpExitsZeroAndListsFlags) {
  const CliResult result = RunCli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--strategy"), std::string::npos);
  EXPECT_NE(result.output.find("--num_threads"), std::string::npos);
  EXPECT_NE(result.output.find("--backend"), std::string::npos);
}

TEST(FlagsTest, UnknownBackendIsRejected) {
  ExpectRejected("--backend=cuda", "unknown backend: cuda");
}

TEST(FlagsTest, ExplicitZeroOrNegativeNumThreadsIsRejected) {
  ExpectRejected("--num_threads=0", "--num_threads must be >= 1");
  ExpectRejected("--num_threads=-2", "--num_threads must be >= 1");
}

TEST(FlagsTest, UnknownStrategyIsRejected) {
  ExpectRejected("--strategy=bogus", "unknown strategy: bogus");
}

TEST(FlagsTest, UnknownSimilarityModeIsRejected) {
  ExpectRejected("--similarity_mode=cosine",
                 "--similarity_mode must be exact, auto, or lsh");
}

TEST(FlagsTest, UnknownDatasetIsRejected) {
  ExpectRejected("--dataset=imagenet", "unknown dataset: imagenet");
}

TEST(FlagsTest, UnknownModelIsRejected) {
  ExpectRejected("--model=transformer", "transformer");
}

TEST(FlagsTest, ResumeWithoutCheckpointDirIsRejected) {
  ExpectRejected("--resume", "--resume requires --checkpoint_dir");
}

TEST(FlagsTest, NonPositiveRoundShapeIsRejected) {
  ExpectRejected("--clients=0", "--clients must be >= 1");
  ExpectRejected("--rounds=-3", "--rounds must be >= 1");
  ExpectRejected("--epochs=0", "--epochs must be >= 1");
  ExpectRejected("--repeats=0", "--repeats must be >= 1");
  ExpectRejected("--batch=-1", "--batch must be >= 0");
}

TEST(FlagsTest, ParticipationOutsideUnitIntervalIsRejected) {
  ExpectRejected("--participation=0", "--participation must be in (0, 1]");
  ExpectRejected("--participation=1.5", "--participation must be in (0, 1]");
}

TEST(FlagsTest, InvalidFailureRatesAreRejected) {
  ExpectRejected("--fail_dropout=0.7 --fail_crash=0.7",
                 "failure rates must be >= 0 and sum to at most 1");
  ExpectRejected("--fail_straggler=-0.1",
                 "failure rates must be >= 0 and sum to at most 1");
}

TEST(FlagsTest, UnknownFlagIsRejected) {
  ExpectRejected("--bogus=1", "unknown flag: --bogus=1");
}

TEST(FlagsTest, HelpListsAsyncFlags) {
  const CliResult result = RunCli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--async"), std::string::npos);
  EXPECT_NE(result.output.find("--staleness_tau"), std::string::npos);
  EXPECT_NE(result.output.find("--staleness_decay"), std::string::npos);
}

TEST(FlagsTest, StalenessKnobsWithoutAsyncAreRejected) {
  ExpectRejected("--staleness_tau=2",
                 "--staleness_tau/--staleness_decay require --async");
  ExpectRejected("--staleness_decay=0.5",
                 "--staleness_tau/--staleness_decay require --async");
}

TEST(FlagsTest, AsyncStalenessBoundsAreRejected) {
  ExpectRejected("--async --staleness_tau=-1",
                 "--staleness_tau must be >= 0");
  ExpectRejected("--async --staleness_decay=0",
                 "--staleness_decay must be in (0, 1]");
  ExpectRejected("--async --staleness_decay=1.5",
                 "--staleness_decay must be in (0, 1]");
}

TEST(FlagsTest, AsyncWithCheckpointingIsRejected) {
  ExpectRejected("--async --checkpoint_dir=/tmp/fedgta_flags_test_ckpt",
                 "--async does not support checkpointing");
  ExpectRejected("--async --halt_after_round=2",
                 "--async does not support checkpointing");
}

TEST(FlagsTest, AsyncWithRoundAlignedStrategyIsRejected) {
  ExpectRejected("--async --strategy=scaffold",
                 "--async requires an async-capable strategy; 'scaffold'");
}

TEST(FlagsTest, HelpListsCompressFlags) {
  const CliResult result = RunCli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--compress"), std::string::npos);
  EXPECT_NE(result.output.find("--compress_topk"), std::string::npos);
}

TEST(FlagsTest, UnknownCompressCodecIsRejected) {
  ExpectRejected("--compress=gzip", "--compress must be off or one of");
}

TEST(FlagsTest, CompressTopkWithoutDeltaIsRejected) {
  ExpectRejected("--compress_topk=4",
                 "--compress_topk requires --compress=delta");
  ExpectRejected("--compress=int8 --compress_topk=4",
                 "--compress_topk requires --compress=delta");
}

TEST(FlagsTest, CompressTopkOutOfRangeIsRejected) {
  ExpectRejected("--compress=delta --compress_topk=0",
                 "--compress_topk must be >= 1");
  ExpectRejected("--compress=delta --compress_topk=-3",
                 "--compress_topk must be >= 1");
}

// The server and worker roles share the same flag table and validation;
// exercise them in-process (the binaries would block on sockets).
fedgta::Result<fedgta::cli::ExperimentCli> Parse(
    fedgta::cli::Role role, std::vector<std::string> args) {
  std::string prog = "flags_test_binary";
  std::vector<char*> argv = {prog.data()};
  for (std::string& arg : args) argv.push_back(arg.data());
  return fedgta::cli::ParseAndValidate(role, static_cast<int>(argv.size()),
                                       argv.data());
}

TEST(RoleFlagsTest, ServerAcceptsAndPlumbsCompressFlags) {
  fedgta::Result<fedgta::cli::ExperimentCli> cli =
      Parse(fedgta::cli::Role::kServer,
            {"--compress=delta", "--compress_topk=64"});
  ASSERT_TRUE(cli.ok()) << cli.status();
  const fedgta::RemoteFedConfig config = cli->ToRemoteConfig();
  EXPECT_EQ(config.compress, "delta");
  EXPECT_EQ(config.compress_topk, 64);
}

TEST(RoleFlagsTest, ServerRejectsBadCompressValues) {
  EXPECT_FALSE(Parse(fedgta::cli::Role::kServer, {"--compress=gzip"}).ok());
  EXPECT_FALSE(
      Parse(fedgta::cli::Role::kServer, {"--compress_topk=4"}).ok());
  EXPECT_FALSE(Parse(fedgta::cli::Role::kServer,
                     {"--compress=delta", "--compress_topk=0"})
                   .ok());
}

TEST(RoleFlagsTest, WorkerCompressFlagRestrictsAdvertisement) {
  // No flag: advertise everything (empty sentinel).
  fedgta::Result<fedgta::cli::ExperimentCli> dflt =
      Parse(fedgta::cli::Role::kWorker, {});
  ASSERT_TRUE(dflt.ok()) << dflt.status();
  EXPECT_EQ(dflt->ToRunnerOptions().compress, "");
  // Explicit codec: advertise just that one.
  fedgta::Result<fedgta::cli::ExperimentCli> fp16 =
      Parse(fedgta::cli::Role::kWorker, {"--compress=fp16"});
  ASSERT_TRUE(fp16.ok()) << fp16.status();
  EXPECT_EQ(fp16->ToRunnerOptions().compress, "fp16");
  // Explicit off: advertise none.
  fedgta::Result<fedgta::cli::ExperimentCli> off =
      Parse(fedgta::cli::Role::kWorker, {"--compress=off"});
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->ToRunnerOptions().compress, "off");
  // Bad values are rejected in the worker role too.
  EXPECT_FALSE(Parse(fedgta::cli::Role::kWorker, {"--compress=lzma"}).ok());
  EXPECT_FALSE(
      Parse(fedgta::cli::Role::kWorker, {"--compress_topk=2"}).ok());
}

}  // namespace
