#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "graph/normalized_adjacency.h"
#include "graph/subgraph.h"

namespace fedgta {
namespace {

Graph TriangleWithTail() {
  // 0-1, 1-2, 2-0 triangle; 2-3 tail.
  return Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(GraphTest, BasicConstruction) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(2), 3);
  EXPECT_EQ(g.Degree(3), 1);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g = TriangleWithTail();
  const auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, HasEdgeSymmetric) {
  Graph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, UndirectedEdgesEachOnce) {
  Graph g = TriangleWithTail();
  const auto edges = g.UndirectedEdges();
  EXPECT_EQ(edges.size(), 4u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(5, {});
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.Degree(4), 0);
}

TEST(NormalizedAdjacencyTest, SymmetricRowsIncludeSelfLoop) {
  Graph g = TriangleWithTail();
  CsrMatrix adj = NormalizedAdjacency(g, 0.5f);
  // Every row has degree+1 entries (self loop added).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(adj.RowNnz(v), g.Degree(v) + 1);
  }
  // Symmetric normalization: entry (i, j) = 1/sqrt(d̃_i d̃_j).
  Matrix dense = adj.ToDense();
  EXPECT_NEAR(dense(0, 1), 1.0f / 3.0f, 1e-6f);          // d̃=3, d̃=3
  EXPECT_NEAR(dense(2, 3), 1.0f / std::sqrt(8.0f), 1e-6f);  // d̃=4, d̃=2
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      EXPECT_NEAR(dense(i, j), dense(j, i), 1e-6f);
    }
  }
}

TEST(NormalizedAdjacencyTest, RowStochasticWhenRZero) {
  // r = 0: Ã = D̂^{-1} Â, rows sum to 1.
  Graph g = TriangleWithTail();
  CsrMatrix adj = NormalizedAdjacency(g, 0.0f);
  const auto sums = adj.RowSums();
  for (float s : sums) EXPECT_NEAR(s, 1.0f, 1e-5f);
}

TEST(NormalizedAdjacencyTest, IsolatedNodeGetsSelfLoopOnly) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  CsrMatrix adj = NormalizedAdjacency(g, 0.5f);
  EXPECT_EQ(adj.RowNnz(2), 1);
  EXPECT_NEAR(adj.ToDense()(2, 2), 1.0f, 1e-6f);
}

TEST(NormalizedAdjacencyTest, NoSelfLoopVariant) {
  Graph g = TriangleWithTail();
  CsrMatrix adj = NormalizedAdjacencyNoSelfLoops(g);
  Matrix dense = adj.ToDense();
  for (NodeId v = 0; v < 4; ++v) EXPECT_FLOAT_EQ(dense(v, v), 0.0f);
  EXPECT_NEAR(dense(0, 1), 0.5f, 1e-6f);  // d=2, d=2
}

TEST(RowMeanAdjacencyTest, RowsAverageNeighbors) {
  Graph g = TriangleWithTail();
  CsrMatrix mean = RowMeanAdjacency(g);
  const auto sums = mean.RowSums();
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NEAR(sums[static_cast<size_t>(v)], 1.0f, 1e-6f);
  }
  Matrix x(4, 1);
  x(0, 0) = 3.0f;
  x(1, 0) = 6.0f;
  Matrix out = mean * x;
  // Node 2 neighbors {0,1,3}: mean = (3+6+0)/3.
  EXPECT_NEAR(out(2, 0), 3.0f, 1e-6f);
}

TEST(SelfLoopDegreesTest, DegreePlusOne) {
  Graph g = TriangleWithTail();
  const auto deg = SelfLoopDegrees(g);
  EXPECT_FLOAT_EQ(deg[0], 3.0f);
  EXPECT_FLOAT_EQ(deg[2], 4.0f);
  EXPECT_FLOAT_EQ(deg[3], 2.0f);
}

TEST(SubgraphTest, InducesEdgesAndMaps) {
  Graph g = TriangleWithTail();
  Subgraph sub = InduceSubgraph(g, {2, 0, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 3);  // full triangle
  EXPECT_EQ(sub.global_ids[0], 2);
  // Local 0 == global 2; its tail neighbor 3 is excluded.
  EXPECT_EQ(sub.graph.Degree(0), 2);
}

TEST(SubgraphTest, SingletonNode) {
  Graph g = TriangleWithTail();
  Subgraph sub = InduceSubgraph(g, {3});
  EXPECT_EQ(sub.graph.num_nodes(), 1);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(MetricsTest, EdgeHomophily) {
  Graph g = TriangleWithTail();
  EXPECT_DOUBLE_EQ(EdgeHomophily(g, {0, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(EdgeHomophily(g, {0, 0, 0, 0}), 1.0);
  Graph empty = Graph::FromEdges(2, {});
  EXPECT_DOUBLE_EQ(EdgeHomophily(empty, {0, 1}), 0.0);
}

TEST(MetricsTest, LabelHistogram) {
  const auto hist = LabelHistogram({0, 2, 2, 1, 2}, 4);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[2], 3);
  EXPECT_EQ(hist[3], 0);
}

TEST(MetricsTest, ConnectedComponents) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}});
  int count = 0;
  const auto comp = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
}

TEST(MetricsTest, ModularityOfPerfectSplit) {
  // Two disconnected triangles: modularity of the natural split = 0.5.
  Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_NEAR(Modularity(g, {0, 0, 0, 1, 1, 1}), 0.5, 1e-9);
  // All in one community: modularity 0.
  EXPECT_NEAR(Modularity(g, {0, 0, 0, 0, 0, 0}), 0.0, 1e-9);
}

TEST(GeneratorTest, RespectsNodeAndClassCounts) {
  SbmConfig cfg;
  cfg.num_nodes = 500;
  cfg.num_classes = 5;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.9;
  Rng rng(21);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  EXPECT_EQ(lg.graph.num_nodes(), 500);
  EXPECT_EQ(lg.num_classes, 5);
  EXPECT_EQ(lg.labels.size(), 500u);
  EXPECT_EQ(lg.regions.size(), 500u);
  const auto hist = LabelHistogram(lg.labels, 5);
  for (int64_t h : hist) EXPECT_GT(h, 0);
}

TEST(GeneratorTest, HomophilyControlsEdgeHomophily) {
  SbmConfig cfg;
  cfg.num_nodes = 2000;
  cfg.num_classes = 4;
  cfg.avg_degree = 8.0;
  Rng rng(33);
  cfg.homophily = 0.9;
  const double high =
      EdgeHomophily(GeneratePlantedPartition(cfg, rng).graph,
                    GeneratePlantedPartition(cfg, rng).labels);
  // Regenerate consistently (graph+labels from the same draw).
  Rng rng2(33);
  LabeledGraph hi = GeneratePlantedPartition(cfg, rng2);
  const double h_high = EdgeHomophily(hi.graph, hi.labels);
  cfg.homophily = 0.2;
  Rng rng3(33);
  LabeledGraph lo = GeneratePlantedPartition(cfg, rng3);
  const double h_low = EdgeHomophily(lo.graph, lo.labels);
  EXPECT_GT(h_high, 0.75);
  EXPECT_LT(h_low, 0.5);
  EXPECT_GT(h_high, h_low);
  (void)high;
}

TEST(GeneratorTest, AverageDegreeApproximatelyMatches) {
  SbmConfig cfg;
  cfg.num_nodes = 3000;
  cfg.num_classes = 3;
  cfg.avg_degree = 10.0;
  Rng rng(5);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  const double avg_deg =
      2.0 * static_cast<double>(lg.graph.num_edges()) / 3000.0;
  // Dedup removes some sampled edges; allow slack.
  EXPECT_GT(avg_deg, 7.0);
  EXPECT_LE(avg_deg, 10.5);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  SbmConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_classes = 3;
  Rng a(77);
  Rng b(77);
  LabeledGraph ga = GeneratePlantedPartition(cfg, a);
  LabeledGraph gb = GeneratePlantedPartition(cfg, b);
  EXPECT_EQ(ga.graph.num_edges(), gb.graph.num_edges());
  EXPECT_EQ(ga.labels, gb.labels);
}

TEST(GeneratorTest, ClassImbalanceSkewsSizes) {
  SbmConfig cfg;
  cfg.num_nodes = 2000;
  cfg.num_classes = 5;
  cfg.class_imbalance = 1.0;
  Rng rng(9);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  const auto hist = LabelHistogram(lg.labels, 5);
  EXPECT_GT(hist[0], 2 * hist[4]);
}

TEST(GeneratorTest, RegionsPartitionClasses) {
  SbmConfig cfg;
  cfg.num_nodes = 600;
  cfg.num_classes = 3;
  cfg.regions_per_class = 4;
  Rng rng(15);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  EXPECT_EQ(lg.num_regions, 12);
  for (int v = 0; v < 600; ++v) {
    const int region = lg.regions[static_cast<size_t>(v)];
    EXPECT_EQ(region / 4, lg.labels[static_cast<size_t>(v)]);
  }
}

TEST(FeatureTest, FeaturesClusterAroundClassCentroids) {
  Rng rng(101);
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i % 2);
  FeatureConfig cfg;
  cfg.dim = 32;
  cfg.center_scale = 5.0f;  // well separated
  cfg.noise_scale = 0.5f;
  Matrix features = GenerateFeatures(labels, 2, cfg, rng);
  EXPECT_EQ(features.rows(), 200);
  EXPECT_EQ(features.cols(), 32);
  // Same-class nodes are closer than cross-class nodes on average.
  auto dist2 = [&features](int64_t a, int64_t b) {
    double d = 0.0;
    for (int64_t j = 0; j < 32; ++j) {
      const double diff = features(a, j) - features(b, j);
      d += diff * diff;
    }
    return d;
  };
  double same = 0.0;
  double cross = 0.0;
  int n = 0;
  for (int64_t i = 0; i + 3 < 200; i += 4, ++n) {
    same += dist2(i, i + 2);    // same parity
    cross += dist2(i, i + 1);   // different parity
  }
  EXPECT_LT(same / n, cross / n);
}

}  // namespace
}  // namespace fedgta
