#include <atomic>
#include <cctype>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace fedgta {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllErrorConstructorsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return InternalError("boom"); };
  auto wrapper = [&fails]() -> Status {
    FEDGTA_RETURN_IF_ERROR(fails());
    return OkStatus();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.Uniform(2.0f, 5.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 2000; ++i) {
    const size_t pick = rng.Categorical({0.0, 9.0, 1.0});
    EXPECT_NE(pick, 0u);  // zero-weight item never picked
    if (pick == 1) ++hits;
  }
  EXPECT_GT(hits, 1600);  // ~90% expected
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(9);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(1);
  Rng fork = a.Fork(1);
  // A fork should not replay the parent's sequence.
  Rng b(1);
  (void)b.engine()();  // parent consumed one draw to fork
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (fork.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelFor(0, 5000, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(10, 10, [](int64_t) { FAIL() << "must not run"; });
  ParallelFor(10, 5, [](int64_t) { FAIL() << "must not run"; });
}

// Regression: a ParallelFor issued from inside a pool task must run inline.
// Before the nested-parallelism fix, the inner call re-entered the shared
// pool and blocked on ThreadPool::Wait — with every worker inside the outer
// loop, no worker remained to drain the inner tasks and this test deadlocked.
TEST(ParallelForTest, NestedCallsRunInlineInsteadOfDeadlocking) {
  constexpr int64_t kOuter = 64;
  constexpr int64_t kInner = 32;
  std::atomic<int64_t> total{0};
  ParallelFor(
      0, kOuter,
      [&total](int64_t) {
        // Saturates the pool: each outer body issues its own parallel
        // section while every worker is already busy with an outer index.
        ParallelFor(
            0, kInner, [&total](int64_t) { total.fetch_add(1); },
            /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ParallelForTest, WorkerContextDetectedInsideTasks) {
  EXPECT_FALSE(ThreadPool::IsWorkerThread());
  std::atomic<int> worker_hits{0};
  ParallelFor(
      0, 16,
      [&worker_hits](int64_t) {
        if (ThreadPool::IsWorkerThread()) worker_hits.fetch_add(1);
      },
      /*grain=*/1);
  EXPECT_FALSE(ThreadPool::IsWorkerThread());
  if (GlobalThreadPoolSize() > 1) {
    EXPECT_GT(worker_hits.load(), 0);
  }
}

TEST(TaskGroupTest, WaitScopesToOwnTasksOnly) {
  ThreadPool pool(4);
  std::atomic<bool> slow_done{false};
  TaskGroup slow(pool);
  slow.Submit([&slow_done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    slow_done.store(true);
  });

  // A sibling group on the same pool completes without waiting for `slow`.
  std::atomic<int> fast_count{0};
  {
    TaskGroup fast(pool);
    for (int i = 0; i < 8; ++i) {
      fast.Submit([&fast_count] { fast_count.fetch_add(1); });
    }
    fast.Wait();
  }
  EXPECT_EQ(fast_count.load(), 8);
  slow.Wait();
  EXPECT_TRUE(slow_done.load());
}

TEST(TaskGroupTest, ConcurrentGroupsFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kThreads = 8;
  constexpr int kTasksPer = 50;
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &total] {
      TaskGroup group(pool);
      for (int i = 0; i < kTasksPer; ++i) {
        group.Submit([&total] { total.fetch_add(1); });
      }
      group.Wait();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total.load(), kThreads * kTasksPer);
}

// Restores the default pool size even if an assertion fails mid-test.
class GlobalPoolSizeTest : public testing::Test {
 protected:
  ~GlobalPoolSizeTest() override { SetGlobalThreadPoolSize(0); }
};

TEST_F(GlobalPoolSizeTest, ResizeTakesEffectAndResets) {
  SetGlobalThreadPoolSize(3);
  EXPECT_EQ(GlobalThreadPoolSize(), 3);
  // The resized pool must actually execute work.
  std::atomic<int> count{0};
  ParallelFor(
      0, 100, [&count](int64_t) { count.fetch_add(1); }, /*grain=*/1);
  EXPECT_EQ(count.load(), 100);

  SetGlobalThreadPoolSize(1);
  EXPECT_EQ(GlobalThreadPoolSize(), 1);
  SetGlobalThreadPoolSize(0);
  EXPECT_GE(GlobalThreadPoolSize(), 1);
}

TEST(ParallelForChunkedTest, ChunksPartitionRange) {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelForChunked(
      0, 10000,
      [&](int64_t lo, int64_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      128);
  std::sort(chunks.begin(), chunks.end());
  int64_t expected = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 10000);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(FormatMeanStdTest, DefaultPrecision) {
  EXPECT_EQ(FormatMeanStd(82.149, 0.351), "82.1±0.4");
  EXPECT_EQ(FormatMeanStd(82.149, 0.351, 2), "82.15±0.35");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "12345"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 12345 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string rendered = table.ToString();
  // header rule + separator + bottom rule + top rule = 4 rules
  size_t rules = 0;
  for (size_t pos = rendered.find("+-"); pos != std::string::npos;
       pos = rendered.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.Millis(), 15.0);
  timer.Restart();
  EXPECT_LT(timer.Millis(), 15.0);
}

// Restores the default sink and min level even when a test fails mid-way.
class LogSinkTest : public testing::Test {
 protected:
  ~LogSinkTest() override {
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
};

TEST_F(LogSinkTest, SinkCapturesRecordsWithTimestamp) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, std::string_view message) {
    captured.emplace_back(level, std::string(message));
  });
  FEDGTA_LOG(WARNING) << "hello sink " << 42;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  const std::string& message = captured[0].second;
  EXPECT_NE(message.find("hello sink 42"), std::string::npos);
  EXPECT_NE(message.find("common_test.cc"), std::string::npos);
  // "[W HH:MM:SS.mmm file:line]" — check the timestamp shape.
  ASSERT_GE(message.size(), 16u);
  EXPECT_EQ(message.substr(0, 3), "[W ");
  EXPECT_EQ(message[5], ':');
  EXPECT_EQ(message[8], ':');
  EXPECT_EQ(message[11], '.');
  for (const size_t i : {3u, 4u, 6u, 7u, 9u, 10u, 12u, 13u, 14u}) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(message[i])))
        << message;
  }
}

TEST_F(LogSinkTest, MinLevelFiltersBeforeSink) {
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel, std::string_view message) {
    captured.emplace_back(message);
  });
  SetMinLogLevel(LogLevel::kError);
  FEDGTA_LOG(INFO) << "dropped";
  FEDGTA_LOG(ERROR) << "kept";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("kept"), std::string::npos);
}

}  // namespace
}  // namespace fedgta
