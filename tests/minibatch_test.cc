// Tests for optional minibatch local training (Client::SetBatchSize),
// the fidelity knob documented in DESIGN.md §7.

#include <gtest/gtest.h>

#include "data/federated.h"
#include "fed/scaffold.h"
#include "fed/simulation.h"
#include "graph/generator.h"

namespace fedgta {
namespace {

FederatedDataset SmallFederated(uint64_t seed) {
  SbmConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_classes = 3;
  cfg.avg_degree = 6.0;
  Rng rng(seed);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 3;
  FeatureConfig fcfg;
  fcfg.dim = 8;
  ds.features = GenerateFeatures(ds.labels, 3, fcfg, rng);
  StratifiedSplit(ds.labels, 3, 0.4, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.num_clients = 3;
  Rng srng(seed ^ 3);
  return BuildFederatedDataset(std::move(ds), split, srng);
}

ModelConfig SmallModel() {
  ModelConfig cfg;
  cfg.type = ModelType::kSgc;
  cfg.k = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(MinibatchTest, ZeroBatchMatchesDefaultFullBatch) {
  FederatedDataset fed = SmallFederated(1);
  Client a(&fed.clients[0], SmallModel(), OptimizerConfig{}, 7);
  Client b(&fed.clients[0], SmallModel(), OptimizerConfig{}, 7);
  b.SetBatchSize(0);
  a.TrainLocal(4);
  b.TrainLocal(4);
  EXPECT_EQ(a.GetParams(), b.GetParams());
}

TEST(MinibatchTest, OversizedBatchIsFullBatch) {
  FederatedDataset fed = SmallFederated(2);
  Client a(&fed.clients[0], SmallModel(), OptimizerConfig{}, 7);
  Client b(&fed.clients[0], SmallModel(), OptimizerConfig{}, 7);
  b.SetBatchSize(static_cast<int>(fed.clients[0].train_idx.size()) + 100);
  a.TrainLocal(3);
  b.TrainLocal(3);
  EXPECT_EQ(a.GetParams(), b.GetParams());
}

TEST(MinibatchTest, SmallBatchChangesTrajectoryButStillLearns) {
  FederatedDataset fed = SmallFederated(3);
  OptimizerConfig opt;
  opt.lr = 0.05f;
  Client full(&fed.clients[0], SmallModel(), opt, 7);
  Client mini(&fed.clients[0], SmallModel(), opt, 7);
  mini.SetBatchSize(8);
  for (int r = 0; r < 10; ++r) {
    full.TrainLocal(2);
    mini.TrainLocal(2);
  }
  EXPECT_NE(full.GetParams(), mini.GetParams())
      << "sampled batches must perturb the trajectory";
  EXPECT_GT(mini.TestAccuracy(), 0.4) << "minibatch SGD still learns";
}

TEST(MinibatchTest, DeterministicPerSeed) {
  FederatedDataset fed = SmallFederated(4);
  Client a(&fed.clients[1], SmallModel(), OptimizerConfig{}, 11);
  Client b(&fed.clients[1], SmallModel(), OptimizerConfig{}, 11);
  a.SetBatchSize(8);
  b.SetBatchSize(8);
  a.TrainLocal(5);
  b.TrainLocal(5);
  EXPECT_EQ(a.GetParams(), b.GetParams());
}

TEST(MinibatchTest, SimulationPlumbsBatchSize) {
  FederatedDataset fed = SmallFederated(5);
  SimulationConfig sim;
  sim.rounds = 4;
  sim.batch_size = 8;
  StrategyOptions sopt;
  Simulation simulation(&fed, SmallModel(), OptimizerConfig{},
                        std::move(*MakeStrategy("fedavg", sopt)), sim);
  for (Client& client : simulation.clients()) {
    EXPECT_EQ(client.batch_size(), 8);
  }
  const SimulationResult result = simulation.Run();
  EXPECT_GT(result.final_test_accuracy, 0.3);
}

TEST(MinibatchTest, ScaffoldRunsWithMinibatch) {
  FederatedDataset fed = SmallFederated(6);
  SimulationConfig sim;
  sim.rounds = 4;
  sim.batch_size = 8;
  StrategyOptions sopt;
  Simulation simulation(&fed, SmallModel(), OptimizerConfig{},
                        std::move(*MakeStrategy("scaffold", sopt)), sim);
  const SimulationResult result = simulation.Run();
  EXPECT_GT(result.final_test_accuracy, 0.3);
}

}  // namespace
}  // namespace fedgta
