// Serialization + checkpoint/resume state tests: the versioned binary
// format, the SaveState/LoadState contract across optimizers, clients, and
// every strategy, deterministic failure injection, and Simulation-level
// checkpoint files.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"
#include "data/federated.h"
#include "fed/failure.h"
#include "fed/simulation.h"
#include "fed/strategy.h"
#include "graph/generator.h"
#include "nn/optimizer.h"

namespace fedgta {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  const char data[] = "123456789";
  EXPECT_EQ(serialize::Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(serialize::Crc32(data, 0), 0u);
}

TEST(SerializeTest, ScalarAndVectorRoundTrip) {
  serialize::Writer writer;
  writer.WriteU32(7u);
  writer.WriteU64(1ull << 40);
  writer.WriteI32(-3);
  writer.WriteI64(-(1ll << 40));
  writer.WriteFloat(1.5f);
  writer.WriteDouble(-2.25);
  writer.WriteBool(true);
  writer.WriteString("hello");
  writer.WriteFloatVec(std::vector<float>{1.0f, 2.0f});
  writer.WriteDoubleVec(std::vector<double>{3.0});
  writer.WriteI32Vec(std::vector<int32_t>{4, 5, 6});
  writer.WriteI64Vec(std::vector<int64_t>{});

  serialize::Reader reader(writer.payload());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  float f = 0.0f;
  double d = 0.0;
  bool b = false;
  std::string s;
  std::vector<float> fv;
  std::vector<double> dv;
  std::vector<int32_t> iv;
  std::vector<int64_t> lv;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadFloat(&f).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadBool(&b).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadFloatVec(&fv).ok());
  ASSERT_TRUE(reader.ReadDoubleVec(&dv).ok());
  ASSERT_TRUE(reader.ReadI32Vec(&iv).ok());
  ASSERT_TRUE(reader.ReadI64Vec(&lv).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i32, -3);
  EXPECT_EQ(i64, -(1ll << 40));
  EXPECT_FLOAT_EQ(f, 1.5f);
  EXPECT_DOUBLE_EQ(d, -2.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(fv, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(dv, (std::vector<double>{3.0}));
  EXPECT_EQ(iv, (std::vector<int32_t>{4, 5, 6}));
  EXPECT_TRUE(lv.empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, OverReadIsOutOfRangeNotAbort) {
  serialize::Writer writer;
  writer.WriteU32(1u);
  serialize::Reader reader(writer.payload());
  uint64_t u64 = 0;
  EXPECT_EQ(reader.ReadU64(&u64).code(), StatusCode::kOutOfRange);
  // A length prefix larger than the remaining payload must be rejected too.
  serialize::Writer bad;
  bad.WriteU64(1ull << 50);  // claims a huge vector follows
  serialize::Reader vec_reader(bad.payload());
  std::vector<float> fv;
  EXPECT_EQ(vec_reader.ReadFloatVec(&fv).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, FileRoundTripAndNotFound) {
  const std::string path = TempPath("fedgta_serialize_roundtrip.ckpt");
  serialize::Writer writer;
  writer.WriteString("payload");
  writer.WriteI64(42);
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  Result<serialize::Reader> reader = serialize::Reader::FromFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  std::string s;
  int64_t v = 0;
  ASSERT_TRUE(reader->ReadString(&s).ok());
  ASSERT_TRUE(reader->ReadI64(&v).ok());
  EXPECT_EQ(s, "payload");
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(reader->AtEnd());
  std::filesystem::remove(path);

  EXPECT_EQ(serialize::Reader::FromFile(TempPath("fedgta_no_such_file.ckpt"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(RngStateTest, SavedStreamContinuesIdentically) {
  Rng rng(123);
  for (int i = 0; i < 100; ++i) rng.Uniform();
  const std::string state = rng.SaveState();
  Rng restored(0);
  ASSERT_TRUE(restored.LoadState(state).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(rng.Uniform(), restored.Uniform());
    EXPECT_EQ(rng.UniformInt(0, 1000), restored.UniformInt(0, 1000));
  }
}

TEST(RngStateTest, MalformedStateIsInvalidArgument) {
  Rng rng(1);
  EXPECT_EQ(rng.LoadState("not a generator state").code(),
            StatusCode::kInvalidArgument);
}

// Steps an optimizer on a small parameter set, checkpoints it, and verifies
// a restored optimizer takes bit-identical further steps.
void CheckOptimizerRoundTrip(const OptimizerConfig& config) {
  Matrix w1(2, 3, 1.0f), g1(2, 3, 0.5f);
  Matrix w2(3, 1, -1.0f), g2(3, 1, 0.25f);
  std::vector<ParamRef> params{{&w1, &g1}, {&w2, &g2}};
  std::unique_ptr<Optimizer> opt = MakeOptimizer(config);
  opt->Step(params);
  opt->Step(params);

  serialize::Writer writer;
  opt->SaveState(&writer);

  Matrix w1b = w1, g1b = g1, w2b = w2, g2b = g2;
  std::vector<ParamRef> params_b{{&w1b, &g1b}, {&w2b, &g2b}};
  std::unique_ptr<Optimizer> restored = MakeOptimizer(config);
  serialize::Reader reader(writer.payload());
  ASSERT_TRUE(restored->LoadState(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());

  opt->Step(params);
  restored->Step(params_b);
  for (int64_t i = 0; i < w1.rows() * w1.cols(); ++i) {
    EXPECT_EQ(w1.data()[i], w1b.data()[i]);
  }
  for (int64_t i = 0; i < w2.rows() * w2.cols(); ++i) {
    EXPECT_EQ(w2.data()[i], w2b.data()[i]);
  }
}

TEST(OptimizerStateTest, SgdRoundTrip) {
  OptimizerConfig config;
  config.type = OptimizerType::kSgd;
  config.momentum = 0.9f;
  CheckOptimizerRoundTrip(config);
}

TEST(OptimizerStateTest, AdamRoundTrip) {
  OptimizerConfig config;
  config.type = OptimizerType::kAdam;
  CheckOptimizerRoundTrip(config);
}

TEST(OptimizerStateTest, CrossArchitectureLoadFails) {
  Matrix w(2, 2, 1.0f), g(2, 2, 0.5f);
  std::vector<ParamRef> params{{&w, &g}};
  OptimizerConfig config;
  config.type = OptimizerType::kSgd;
  std::unique_ptr<Optimizer> opt = MakeOptimizer(config);
  opt->Step(params);
  serialize::Writer writer;
  opt->SaveState(&writer);
  // Restoring after stepping a *different* shape must fail cleanly.
  Matrix w_other(3, 3, 1.0f), g_other(3, 3, 0.5f);
  std::vector<ParamRef> other{{&w_other, &g_other}};
  std::unique_ptr<Optimizer> restored = MakeOptimizer(config);
  restored->Step(other);
  serialize::Reader reader(writer.payload());
  EXPECT_FALSE(restored->LoadState(&reader).ok());
}

// Small synthetic federated dataset (mirrors fed_test.cc).
FederatedDataset MakeTinyFederated(int num_clients = 4, uint64_t seed = 1) {
  SbmConfig cfg;
  cfg.num_nodes = 400;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.85;
  cfg.regions_per_class = 2;
  Rng rng(seed);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.name = "tiny";
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 4;
  FeatureConfig fcfg;
  fcfg.dim = 8;
  fcfg.noise_scale = 1.5f;
  ds.features = GenerateFeatures(ds.labels, 4, fcfg, rng);
  StratifiedSplit(ds.labels, 4, 0.3, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.method = SplitMethod::kLouvain;
  split.num_clients = num_clients;
  Rng srng(seed ^ 7);
  return BuildFederatedDataset(std::move(ds), split, srng);
}

ModelConfig TinyModel() {
  ModelConfig cfg;
  cfg.type = ModelType::kSgc;
  cfg.k = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(ClientStateTest, RoundTripRestoresParamsAndRngStreams) {
  FederatedDataset fed = MakeTinyFederated();
  ModelConfig model = TinyModel();
  model.dropout = 0.3f;  // exercise the dropout RNG stream
  OptimizerConfig opt;
  Client client(&fed.clients[0], model, opt, 3);
  client.SetBatchSize(16);  // exercise the minibatch RNG stream
  client.TrainLocal(3);

  serialize::Writer writer;
  client.SaveState(&writer);

  Client restored(&fed.clients[0], model, opt, 999);  // different seed
  restored.SetBatchSize(16);
  serialize::Reader reader(writer.payload());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(client.GetParams(), restored.GetParams());

  // Both stochastic streams restored: further training is bit-identical.
  const double loss_a = client.TrainLocal(2);
  const double loss_b = restored.TrainLocal(2);
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
  EXPECT_EQ(client.GetParams(), restored.GetParams());
}

TEST(ClientStateTest, WrongClientIdIsFailedPrecondition) {
  FederatedDataset fed = MakeTinyFederated();
  Client a(&fed.clients[0], TinyModel(), OptimizerConfig{}, 3);
  Client b(&fed.clients[1], TinyModel(), OptimizerConfig{}, 3);
  serialize::Writer writer;
  a.SaveState(&writer);
  serialize::Reader reader(writer.payload());
  EXPECT_EQ(b.LoadState(&reader).code(), StatusCode::kFailedPrecondition);
}

// Runs one federated round for `name`, checkpoints the strategy, restores
// into a freshly initialized instance, and verifies every client's served
// parameters match bit-exactly.
void CheckStrategyRoundTrip(const std::string& name) {
  FederatedDataset fed = MakeTinyFederated();
  std::vector<Client> clients;
  ModelConfig model = TinyModel();
  if (name == "moon") {
    model.type = ModelType::kGcn;  // MOON needs a hidden representation
    model.hidden = 8;
  }
  for (const ClientData& shard : fed.clients) {
    clients.emplace_back(&shard, model, OptimizerConfig{}, 3);
  }
  std::vector<int64_t> sizes;
  for (Client& c : clients) sizes.push_back(c.num_train());

  StrategyOptions options;
  Result<std::unique_ptr<Strategy>> strategy = MakeStrategy(name, options);
  ASSERT_TRUE(strategy.ok()) << name;
  (*strategy)->Initialize(fed.num_clients(), sizes, clients[0].GetParams());
  std::vector<LocalResult> results;
  std::vector<int> participants;
  for (Client& c : clients) {
    results.push_back((*strategy)->TrainClient(c, 2, {}));
    participants.push_back(c.id());
  }
  (*strategy)->Aggregate(participants, results);

  serialize::Writer writer;
  (*strategy)->SaveState(&writer);

  Result<std::unique_ptr<Strategy>> restored = MakeStrategy(name, options);
  ASSERT_TRUE(restored.ok()) << name;
  (*restored)->Initialize(fed.num_clients(), sizes, clients[0].GetParams());
  serialize::Reader reader(writer.payload());
  ASSERT_TRUE((*restored)->LoadState(&reader).ok()) << name;
  EXPECT_TRUE(reader.AtEnd()) << name;

  for (int id = 0; id < fed.num_clients(); ++id) {
    const std::span<const float> a = (*strategy)->ParamsFor(id);
    const std::span<const float> b = (*restored)->ParamsFor(id);
    ASSERT_EQ(a.size(), b.size()) << name << " client " << id;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << name << " client " << id << " param " << i;
    }
  }
}

class StrategyStateTest : public testing::TestWithParam<const char*> {};

TEST_P(StrategyStateTest, SaveLoadRoundTripServesIdenticalParams) {
  CheckStrategyRoundTrip(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyStateTest,
                         testing::Values("fedavg", "fedprox", "scaffold",
                                         "moon", "feddc", "gcfl+", "fedgta",
                                         "local"),
                         [](const auto& info) {
                           std::string n(info.param);
                           if (n == "gcfl+") n = "gcflplus";
                           return n;
                         });

TEST(StrategyStateTest, CrossStrategyLoadIsFailedPrecondition) {
  StrategyOptions options;
  auto fedavg = MakeStrategy("fedavg", options);
  auto scaffold = MakeStrategy("scaffold", options);
  ASSERT_TRUE(fedavg.ok() && scaffold.ok());
  (*fedavg)->Initialize(2, {5, 5}, {1.0f, 2.0f});
  (*scaffold)->Initialize(2, {5, 5}, {1.0f, 2.0f});
  serialize::Writer writer;
  (*fedavg)->SaveState(&writer);
  serialize::Reader reader(writer.payload());
  EXPECT_EQ((*scaffold)->LoadState(&reader).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FailurePlanTest, PureFunctionOfRoundAndClient) {
  FailureConfig config;
  config.dropout_rate = 0.2;
  config.straggler_rate = 0.1;
  config.crash_rate = 0.05;
  config.seed = 77;
  const FailurePlan a(config);
  const FailurePlan b(config);  // independent instance, same config
  for (int round = 0; round < 50; ++round) {
    for (int client = 0; client < 20; ++client) {
      EXPECT_EQ(a.FateOf(round, client), b.FateOf(round, client));
      // Re-querying never changes the answer (no consumed stream).
      EXPECT_EQ(a.FateOf(round, client), a.FateOf(round, client));
    }
  }
}

TEST(FailurePlanTest, EmpiricalRatesMatchConfig) {
  FailureConfig config;
  config.dropout_rate = 0.2;
  config.straggler_rate = 0.1;
  config.seed = 13;
  const FailurePlan plan(config);
  int dropped = 0, stragglers = 0, crashed = 0, total = 0;
  for (int round = 0; round < 500; ++round) {
    for (int client = 0; client < 20; ++client) {
      ++total;
      switch (plan.FateOf(round, client)) {
        case ClientFate::kDropout: ++dropped; break;
        case ClientFate::kStraggler: ++stragglers; break;
        case ClientFate::kCrash: ++crashed; break;
        case ClientFate::kHealthy: break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / total, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(stragglers) / total, 0.1, 0.02);
  EXPECT_EQ(crashed, 0);
}

TEST(FailurePlanTest, ZeroRatesDisableInjection) {
  FailureConfig config;
  EXPECT_FALSE(config.enabled());
  const FailurePlan plan(config);
  for (int round = 0; round < 20; ++round) {
    for (int client = 0; client < 10; ++client) {
      EXPECT_EQ(plan.FateOf(round, client), ClientFate::kHealthy);
    }
  }
}

TEST(SimulationCheckpointTest, WritesFileAndLoadsIntoFreshSimulation) {
  const std::string dir = TempPath("fedgta_sim_ckpt_test");
  std::filesystem::remove_all(dir);
  FederatedDataset fed = MakeTinyFederated();
  StrategyOptions sopt;
  SimulationConfig sim;
  sim.rounds = 4;
  sim.eval_every = 1;
  sim.seed = 21;
  sim.checkpoint_dir = dir;
  sim.checkpoint_every = 1;
  sim.halt_after_round = 2;
  {
    auto strategy = MakeStrategy("fedgta", sopt);
    Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                          std::move(*strategy), sim);
    const SimulationResult partial = simulation.Run();
    EXPECT_EQ(partial.curve.size(), 2u);
    EXPECT_EQ(partial.resumed_from_round, 0);
  }
  const std::string path = Simulation::CheckpointPath(dir);
  ASSERT_TRUE(std::filesystem::exists(path));

  auto strategy = MakeStrategy("fedgta", sopt);
  Simulation fresh(&fed, TinyModel(), OptimizerConfig{}, std::move(*strategy),
                   sim);
  EXPECT_TRUE(fresh.LoadCheckpoint(path).ok());

  // A simulation built with a different seed must refuse the checkpoint.
  SimulationConfig other = sim;
  other.seed = 22;
  auto strategy2 = MakeStrategy("fedgta", sopt);
  Simulation mismatched(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy2), other);
  EXPECT_EQ(mismatched.LoadCheckpoint(path).code(),
            StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fedgta
