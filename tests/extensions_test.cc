// Tests for the §5 future-work extensions (feature moments, adaptive ε),
// communication accounting, and the auxiliary metrics added on top of the
// paper's core algorithm.

#include <cmath>

#include <gtest/gtest.h>

#include "core/fedgta_metrics.h"
#include "core/similarity.h"
#include "fed/scaffold.h"
#include "fed/simulation.h"
#include "graph/generator.h"
#include "linalg/ops.h"
#include "nn/loss.h"

namespace fedgta {
namespace {

LabeledGraph SmallGraph(uint64_t seed) {
  SbmConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  Rng rng(seed);
  return GeneratePlantedPartition(cfg, rng);
}

TEST(FeatureMomentsTest, ExtendsMomentVector) {
  LabeledGraph lg = SmallGraph(1);
  Rng rng(2);
  Matrix logits(120, 4);
  logits.GaussianInit(rng, 1.0f);
  Matrix features(120, 32);
  features.GaussianInit(rng, 1.0f);

  FedGtaOptions base;
  base.k = 3;
  base.moment_order = 2;
  const ClientMetrics plain =
      ComputeClientMetrics(lg.graph, logits, base, &features);
  EXPECT_EQ(plain.moments.size(), 3u * 2u * 4u);

  FedGtaOptions extended = base;
  extended.use_feature_moments = true;
  extended.feature_moment_dims = 8;
  const ClientMetrics with_features =
      ComputeClientMetrics(lg.graph, logits, extended, &features);
  // label block (k*K*c) + feature block (k*K*d).
  EXPECT_EQ(with_features.moments.size(), 3u * 2u * 4u + 3u * 2u * 8u);
  for (float v : with_features.moments) EXPECT_TRUE(std::isfinite(v));
}

TEST(FeatureMomentsTest, CapsAtFeatureDim) {
  LabeledGraph lg = SmallGraph(3);
  Rng rng(4);
  Matrix logits(120, 4);
  logits.GaussianInit(rng, 1.0f);
  Matrix features(120, 5);  // fewer dims than the cap
  features.GaussianInit(rng, 1.0f);
  FedGtaOptions options;
  options.k = 2;
  options.moment_order = 2;
  options.use_feature_moments = true;
  options.feature_moment_dims = 16;
  const ClientMetrics metrics =
      ComputeClientMetrics(lg.graph, logits, options, &features);
  EXPECT_EQ(metrics.moments.size(), 2u * 2u * 4u + 2u * 2u * 5u);
}

TEST(FeatureMomentsTest, NullFeaturesFallBackToLabelsOnly) {
  LabeledGraph lg = SmallGraph(5);
  Rng rng(6);
  Matrix logits(120, 4);
  logits.GaussianInit(rng, 1.0f);
  FedGtaOptions options;
  options.use_feature_moments = true;
  const ClientMetrics metrics =
      ComputeClientMetrics(lg.graph, logits, options, nullptr);
  EXPECT_EQ(metrics.moments.size(),
            static_cast<size_t>(options.k) * options.moment_order * 4u);
}

TEST(FeatureMomentsTest, BlocksAreNormalized) {
  // With the extension on, the label block is L2-normalized, so two clients
  // with proportional label moments but different feature distributions are
  // separated by the feature block.
  LabeledGraph lg = SmallGraph(7);
  Rng rng(8);
  Matrix logits(120, 4);
  logits.GaussianInit(rng, 1.0f);
  Matrix features_a(120, 8);
  features_a.GaussianInit(rng, 1.0f);
  Matrix features_b = features_a;
  features_b *= -1.0f;  // opposite feature geometry
  FedGtaOptions options;
  options.use_feature_moments = true;
  options.feature_moment_dims = 8;
  const ClientMetrics a =
      ComputeClientMetrics(lg.graph, logits, options, &features_a);
  const ClientMetrics b =
      ComputeClientMetrics(lg.graph, logits, options, &features_b);
  // Label blocks identical, feature blocks differ.
  const double sim = CosineSimilarity(a.moments, b.moments);
  EXPECT_LT(sim, 0.99);
  EXPECT_GT(sim, -0.99);
}

TEST(SimilarityQuantileTest, MatchesSortedOrder) {
  Matrix sim(3, 3, 0.0f);
  sim(0, 1) = sim(1, 0) = 0.2f;
  sim(0, 2) = sim(2, 0) = 0.8f;
  sim(1, 2) = sim(2, 1) = 0.5f;
  const std::vector<int> all{0, 1, 2};
  EXPECT_FLOAT_EQ(SimilarityQuantile(sim, all, 0.0), 0.2f);
  EXPECT_FLOAT_EQ(SimilarityQuantile(sim, all, 0.5), 0.5f);
  EXPECT_FLOAT_EQ(SimilarityQuantile(sim, all, 1.0), 0.8f);
  EXPECT_DOUBLE_EQ(SimilarityQuantile(sim, {0}, 0.5), 0.0);
}

TEST(AdaptiveEpsilonTest, MedianSplitsHeterogeneousClients) {
  // Two coherent pairs with orthogonal signatures: the adaptive median
  // threshold must separate the pairs without any hand-tuned ε.
  std::vector<ClientMetrics> metrics(4);
  metrics[0].moments = {1.0f, 0.0f, 0.05f};
  metrics[1].moments = {0.9f, 0.1f, 0.0f};
  metrics[2].moments = {0.0f, 1.0f, 0.05f};
  metrics[3].moments = {0.1f, 0.9f, 0.0f};
  for (auto& m : metrics) m.confidence = 1.0;
  std::vector<std::vector<float>> params(4, std::vector<float>{1.0f});
  std::vector<int64_t> sizes(4, 10);
  std::vector<std::vector<float>> personalized(4);
  std::vector<std::vector<int>> sets;
  FedGtaOptions options;
  options.adaptive_epsilon = true;
  options.adaptive_quantile = 0.5;
  options.epsilon = -123.0;  // must be ignored
  FedGtaAggregate(metrics, params, sizes, {0, 1, 2, 3}, options,
                  &personalized, &sets);
  EXPECT_EQ(sets[0].size(), 2u);
  EXPECT_EQ(sets[2].size(), 2u);
  EXPECT_TRUE((sets[0] == std::vector<int>{0, 1}));
  EXPECT_TRUE((sets[2] == std::vector<int>{2, 3}));
}

TEST(CommunicationTest, DefaultCountsWeightsAndMetrics) {
  FedAvgStrategy strategy;
  strategy.Initialize(2, {1, 1}, {0.0f, 0.0f, 0.0f});
  std::vector<LocalResult> results(2);
  results[0].params = {1.0f, 2.0f, 3.0f};
  results[1].params = {1.0f, 2.0f, 3.0f};
  results[1].metrics.moments = {0.5f, 0.5f};  // FedGTA-style upload
  const auto stats = strategy.RoundCommunication(results);
  EXPECT_EQ(stats.download_floats, 6);
  // 3 + (3 + 2 moments + 1 confidence) = 9.
  EXPECT_EQ(stats.upload_floats, 9);
}

TEST(CommunicationTest, ScaffoldDoublesTraffic) {
  ScaffoldStrategy strategy(0.01f);
  strategy.Initialize(2, {1, 1}, {0.0f, 0.0f});
  std::vector<LocalResult> results(1);
  results[0].params = {1.0f, 2.0f};
  const auto stats = strategy.RoundCommunication(results);
  EXPECT_EQ(stats.download_floats, 4);  // weights + server control
  EXPECT_EQ(stats.upload_floats, 4);    // weights + control delta
}

TEST(CommunicationTest, SimulationAccumulatesVolume) {
  SbmConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_classes = 3;
  Rng rng(9);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 3;
  FeatureConfig fcfg;
  fcfg.dim = 6;
  ds.features = GenerateFeatures(ds.labels, 3, fcfg, rng);
  StratifiedSplit(ds.labels, 3, 0.3, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.num_clients = 4;
  Rng srng(10);
  FederatedDataset fed = BuildFederatedDataset(std::move(ds), split, srng);

  ModelConfig model;
  model.type = ModelType::kSgc;
  model.k = 2;
  SimulationConfig sim;
  sim.rounds = 3;
  StrategyOptions sopt;
  Simulation simulation(&fed, model, OptimizerConfig{},
                        std::move(*MakeStrategy("fedgta", sopt)), sim);
  const SimulationResult result = simulation.Run();
  // 4 clients * 3 rounds * param_count, plus metrics on the upload side.
  const int64_t param_count = 6 * 3 + 3;
  EXPECT_EQ(result.total_download_floats, 3 * 4 * param_count);
  EXPECT_GT(result.total_upload_floats, result.total_download_floats);
}

TEST(MacroF1Test, PerfectAndDegenerate) {
  Matrix logits(4, 2);
  logits(0, 0) = 1.0f;
  logits(1, 1) = 1.0f;
  logits(2, 0) = 1.0f;
  logits(3, 1) = 1.0f;
  EXPECT_DOUBLE_EQ(MacroF1(logits, {0, 1, 0, 1}, {0, 1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(logits, {0, 1, 0, 1}, {}), 0.0);
  // All wrong: F1 = 0.
  EXPECT_DOUBLE_EQ(MacroF1(logits, {1, 0, 1, 0}, {0, 1, 2, 3}), 0.0);
}

TEST(MacroF1Test, MatchesManualComputation) {
  // Predictions: argmax row -> {0, 0, 1}; labels {0, 1, 1}.
  Matrix logits(3, 2);
  logits(0, 0) = 1.0f;
  logits(1, 0) = 1.0f;
  logits(2, 1) = 1.0f;
  // Class 0: tp=1 fp=1 fn=0 -> F1 = 2/3. Class 1: tp=1 fp=0 fn=1 -> 2/3.
  EXPECT_NEAR(MacroF1(logits, {0, 1, 1}, {0, 1, 2}), 2.0 / 3.0, 1e-9);
}

TEST(MacroF1Test, PunishesMajorityCollapseMoreThanAccuracy) {
  // 9 of class 0, 1 of class 1, model always predicts 0.
  Matrix logits(10, 2);
  for (int i = 0; i < 10; ++i) logits(i, 0) = 1.0f;
  std::vector<int> labels(10, 0);
  labels[9] = 1;
  std::vector<int32_t> rows;
  for (int32_t i = 0; i < 10; ++i) rows.push_back(i);
  const double acc = Accuracy(logits, labels, rows);
  const double f1 = MacroF1(logits, labels, rows);
  EXPECT_NEAR(acc, 0.9, 1e-9);
  EXPECT_LT(f1, 0.5);
}

TEST(RowNormalizeTest, L2RowsHaveUnitNorm) {
  Rng rng(11);
  Matrix m(5, 8);
  m.GaussianInit(rng, 3.0f);
  RowNormalizeInPlace(&m);
  for (int64_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(L2Norm(m.Row(r)), 1.0, 1e-5);
  }
}

TEST(RowNormalizeTest, L1RowsSumToOneInAbs) {
  Matrix m(2, 3);
  m(0, 0) = 2.0f;
  m(0, 1) = -2.0f;
  m(1, 2) = 5.0f;
  RowNormalizeInPlace(&m, /*l1=*/true);
  EXPECT_FLOAT_EQ(m(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(m(0, 1), -0.5f);
  EXPECT_FLOAT_EQ(m(1, 2), 1.0f);
}

TEST(RowNormalizeTest, ZeroRowsUntouched) {
  Matrix m(1, 3);
  RowNormalizeInPlace(&m);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

TEST(ExtensionIntegrationTest, FedGtaPlusVariantsTrain) {
  SbmConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_classes = 3;
  cfg.avg_degree = 6.0;
  Rng rng(13);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 3;
  FeatureConfig fcfg;
  fcfg.dim = 8;
  fcfg.noise_scale = 1.5f;
  ds.features = GenerateFeatures(ds.labels, 3, fcfg, rng);
  StratifiedSplit(ds.labels, 3, 0.3, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.num_clients = 4;
  Rng srng(14);
  FederatedDataset fed = BuildFederatedDataset(std::move(ds), split, srng);

  ModelConfig model;
  model.type = ModelType::kSgc;
  model.k = 2;
  SimulationConfig sim;
  sim.rounds = 6;
  StrategyOptions sopt;
  sopt.fedgta.use_feature_moments = true;
  sopt.fedgta.adaptive_epsilon = true;
  Simulation simulation(&fed, model, OptimizerConfig{},
                        std::move(*MakeStrategy("fedgta", sopt)), sim);
  const SimulationResult result = simulation.Run();
  EXPECT_GT(result.final_test_accuracy, 0.3);
}

}  // namespace
}  // namespace fedgta
