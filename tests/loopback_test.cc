// Distributed-vs-in-process determinism: a FedGTA run driven over real TCP
// worker processes (fork+exec of the fedgta_worker binary, loopback
// transport) must be bit-identical to the in-process Simulation of the same
// configuration — same accuracy curve, same losses, same communication and
// failure totals. Also covers graceful degradation when a worker dies
// mid-round.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fed/failure.h"
#include "fed/remote_coordinator.h"
#include "fed/simulation.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace fedgta {
namespace {

pid_t SpawnWorker(int port, int max_train_requests = 0,
                  const std::string& trace_out = "",
                  const std::string& compress = "") {
  const pid_t pid = fork();
  if (pid == 0) {
    std::vector<std::string> args = {
        FEDGTA_WORKER_BINARY,
        "--host=127.0.0.1",
        "--port=" + std::to_string(port),
        "--connect_attempts=60",
        "--deadline_ms=60000",
        "--num_threads=2",
        "--max_train_requests=" + std::to_string(max_train_requests)};
    if (!trace_out.empty()) args.push_back("--trace_out=" + trace_out);
    // Absent: the worker advertises every codec and the server's request
    // decides. "off" (or a codec name) restricts the advertisement.
    if (!compress.empty()) args.push_back("--compress=" + compress);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    execv(FEDGTA_WORKER_BINARY, argv.data());
    _exit(127);  // exec failed
  }
  return pid;
}

/// Listens, forks the worker fleet, drives the run, reaps the children.
/// Forking happens before any thread is created in this process (the
/// coordinator's dispatch threads start inside Run()).
Result<SimulationResult> RunRemote(const RemoteFedConfig& config,
                                   int max_train_requests = 0,
                                   std::vector<int>* exit_codes = nullptr,
                                   const std::string& worker_compress = "") {
  RemoteCoordinator coordinator(config);
  FEDGTA_RETURN_IF_ERROR(coordinator.Listen(0));
  std::vector<pid_t> pids;
  pids.reserve(static_cast<size_t>(config.num_workers));
  for (int w = 0; w < config.num_workers; ++w) {
    pids.push_back(SpawnWorker(coordinator.port(), max_train_requests,
                               /*trace_out=*/"", worker_compress));
  }
  Result<SimulationResult> result = coordinator.Run();
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (exit_codes != nullptr) {
      exit_codes->push_back(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
  }
  return result;
}

/// The same run, in process — the reference the transport must reproduce.
SimulationResult RunInProcess(const RemoteFedConfig& config) {
  FederatedDataset data = MaterializeFederatedDataset(
      config.dataset, config.seed, config.split, config.federated);
  Result<std::unique_ptr<Strategy>> strategy =
      MakeStrategy(config.strategy, config.strategy_options);
  EXPECT_TRUE(strategy.ok()) << strategy.status();
  SimulationConfig sim = config.sim;
  sim.seed = config.seed;
  Simulation simulation(&data, config.model, config.optimizer,
                        std::move(*strategy), sim);
  return simulation.Run();
}

/// Everything deterministic must match exactly; wall-clock fields are
/// deliberately excluded.
void ExpectBitIdentical(const SimulationResult& remote,
                        const SimulationResult& local) {
  EXPECT_EQ(remote.best_test_accuracy, local.best_test_accuracy);
  EXPECT_EQ(remote.final_test_accuracy, local.final_test_accuracy);
  EXPECT_EQ(remote.total_upload_floats, local.total_upload_floats);
  EXPECT_EQ(remote.total_download_floats, local.total_download_floats);
  EXPECT_EQ(remote.total_dropped_clients, local.total_dropped_clients);
  EXPECT_EQ(remote.total_straggler_clients, local.total_straggler_clients);
  EXPECT_EQ(remote.total_crashed_clients, local.total_crashed_clients);
  ASSERT_EQ(remote.curve.size(), local.curve.size());
  for (size_t i = 0; i < remote.curve.size(); ++i) {
    const RoundStats& r = remote.curve[i];
    const RoundStats& l = local.curve[i];
    EXPECT_EQ(r.round, l.round);
    EXPECT_EQ(r.test_accuracy, l.test_accuracy) << "round " << r.round;
    EXPECT_EQ(r.val_accuracy, l.val_accuracy) << "round " << r.round;
    EXPECT_EQ(r.train_loss, l.train_loss) << "round " << r.round;
    EXPECT_EQ(r.upload_floats, l.upload_floats);
    EXPECT_EQ(r.download_floats, l.download_floats);
    EXPECT_EQ(r.dropped_clients, l.dropped_clients);
    EXPECT_EQ(r.straggler_clients, l.straggler_clients);
    EXPECT_EQ(r.crashed_clients, l.crashed_clients);
  }
}

RemoteFedConfig BaseConfig() {
  RemoteFedConfig config;
  config.dataset = "cora";
  config.seed = 7;
  config.split.num_clients = 10;
  config.model.type = ModelType::kSgc;
  config.model.hidden = 16;
  config.model.k = 2;
  config.strategy = "fedgta";
  config.sim.rounds = 3;
  config.sim.local_epochs = 2;
  config.sim.eval_every = 1;
  config.num_workers = 5;
  config.rpc.deadline_ms = 120000;
  config.accept_timeout_ms = 120000;
  return config;
}

TEST(LoopbackTest, FedGtaOverFiveWorkersIsBitIdenticalToSimulation) {
  const RemoteFedConfig config = BaseConfig();
  std::vector<int> exit_codes;
  // Remote first: fork before this process creates thread-pool threads.
  Result<SimulationResult> remote =
      RunRemote(config, /*max_train_requests=*/0, &exit_codes);
  ASSERT_TRUE(remote.ok()) << remote.status();
  for (int code : exit_codes) EXPECT_EQ(code, 0);
  const SimulationResult local = RunInProcess(config);
  ExpectBitIdentical(*remote, local);
  // Sanity: the run actually learned something.
  EXPECT_GT(local.final_test_accuracy, 0.2);
}

TEST(LoopbackTest, FailureInjectionMinibatchAndSamplingStayIdentical) {
  RemoteFedConfig config = BaseConfig();
  config.seed = 11;
  config.num_workers = 3;
  config.sim.batch_size = 16;
  config.sim.participation = 0.6;
  config.sim.failure.dropout_rate = 0.25;
  config.sim.failure.straggler_rate = 0.15;
  config.sim.failure.crash_rate = 0.15;
  Result<SimulationResult> remote = RunRemote(config);
  ASSERT_TRUE(remote.ok()) << remote.status();
  const SimulationResult local = RunInProcess(config);
  EXPECT_GT(local.total_dropped_clients + local.total_straggler_clients +
                local.total_crashed_clients,
            0);
  ExpectBitIdentical(*remote, local);
}

TEST(LoopbackTest, FedProxOverTwoWorkersIsBitIdenticalToSimulation) {
  RemoteFedConfig config = BaseConfig();
  config.strategy = "fedprox";
  config.strategy_options.prox_mu = 0.1f;
  config.num_workers = 2;
  config.sim.rounds = 2;
  Result<SimulationResult> remote = RunRemote(config);
  ASSERT_TRUE(remote.ok()) << remote.status();
  const SimulationResult local = RunInProcess(config);
  ExpectBitIdentical(*remote, local);
}

TEST(LoopbackTest, AsyncTauZeroIsBitIdenticalToSyncSimulation) {
  // The bounded-staleness runtime at tau = 0: the wait rule degenerates to
  // the full round barrier, every injected straggler's late upload misses
  // the window, and the run must reproduce the *synchronous* in-process
  // simulation bit for bit — the async plane's determinism oracle.
  RemoteFedConfig config = BaseConfig();
  config.seed = 13;
  config.num_workers = 3;
  config.sim.rounds = 3;
  config.sim.failure.straggler_rate = 0.3;
  config.sim.failure.seed = 5;
  config.sim.async = true;
  config.sim.staleness_tau = 0;

  std::vector<int> exit_codes;
  Result<SimulationResult> remote =
      RunRemote(config, /*max_train_requests=*/0, &exit_codes);
  ASSERT_TRUE(remote.ok()) << remote.status();
  for (int code : exit_codes) EXPECT_EQ(code, 0);

  RemoteFedConfig sync_config = config;
  sync_config.sim.async = false;
  sync_config.sim.staleness_tau = 0;
  const SimulationResult local = RunInProcess(sync_config);
  EXPECT_GT(local.total_straggler_clients, 0);
  ExpectBitIdentical(*remote, local);
}

int64_t CounterValue(const std::string& name) {
  const Counter* c = GlobalMetrics().FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

TEST(LoopbackTest, AsyncBoundedStalenessMatchesOracleAndPlan) {
  // tau = 2 over five workers with 40% injected stragglers. Every admission
  // decision is a pure function of (seed, round, client): a straggler
  // trained at round r with StragglerDelay d is admitted iff d <= tau and
  // r + d lands inside the run, stale-dropped iff d > tau (and it arrives
  // at all), undelivered iff the run ends first. The remote run must match
  // the in-process async oracle bit for bit and the fed.async.* counters
  // must match the plan's closed form exactly.
  RemoteFedConfig config = BaseConfig();
  config.seed = 17;
  config.num_workers = 5;
  config.sim.rounds = 5;
  config.sim.failure.straggler_rate = 0.4;
  config.sim.failure.seed = 11;
  config.sim.async = true;
  config.sim.staleness_tau = 2;
  config.sim.staleness_decay = 0.5;

  const FailurePlan plan(config.sim.failure);
  int64_t expect_stale = 0;
  int64_t expect_undelivered = 0;
  int64_t expect_accepted = 0;  // admitted + superseded
  for (int r = 1; r <= config.sim.rounds; ++r) {
    for (int c = 0; c < config.split.num_clients; ++c) {
      if (plan.FateOf(r, c) != ClientFate::kStraggler) {
        ++expect_accepted;  // healthy: always admitted within the window
        continue;
      }
      const int d = plan.StragglerDelay(r, c);
      if (r + d > config.sim.rounds) {
        ++expect_undelivered;
      } else if (d > config.sim.staleness_tau) {
        ++expect_stale;
      } else {
        ++expect_accepted;
      }
    }
  }
  ASSERT_GT(expect_stale, 0) << "plan produced no over-tau stragglers";
  ASSERT_GT(expect_undelivered, 0) << "plan produced no undelivered updates";

  const int64_t admitted0 = CounterValue("fed.async.admitted");
  const int64_t superseded0 = CounterValue("fed.async.superseded");
  const int64_t stale0 = CounterValue("fed.async.stale_dropped");
  const int64_t undelivered0 = CounterValue("fed.async.undelivered");

  Result<SimulationResult> remote = RunRemote(config);
  ASSERT_TRUE(remote.ok()) << remote.status();

  EXPECT_EQ(CounterValue("fed.async.stale_dropped") - stale0, expect_stale);
  EXPECT_EQ(CounterValue("fed.async.undelivered") - undelivered0,
            expect_undelivered);
  EXPECT_EQ(CounterValue("fed.async.admitted") - admitted0 +
                CounterValue("fed.async.superseded") - superseded0,
            expect_accepted);
  EXPECT_EQ(remote->total_stale_dropped_updates, expect_stale);
  EXPECT_GT(remote->total_admitted_updates, 0);

  // With eval_every = 1 every round ends in a full barrier, which pins the
  // drain schedule: the distributed run is bit-identical to the in-process
  // oracle even at tau > 0.
  const SimulationResult local = RunInProcess(config);
  ExpectBitIdentical(*remote, local);
  EXPECT_EQ(remote->total_admitted_updates, local.total_admitted_updates);
  EXPECT_EQ(remote->total_stale_dropped_updates,
            local.total_stale_dropped_updates);
}

TEST(LoopbackTest, NonRemotableStrategyIsRejectedBeforeAcceptingWorkers) {
  RemoteFedConfig config = BaseConfig();
  config.strategy = "scaffold";  // mutates per-client server state
  RemoteCoordinator coordinator(config);
  ASSERT_TRUE(coordinator.Listen(0).ok());
  const Result<SimulationResult> result = coordinator.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

std::string QueryStatus(int port, const std::string& command) {
  Result<net::Socket> conn = net::Connect("127.0.0.1", port, 2000);
  EXPECT_TRUE(conn.ok()) << conn.status();
  if (!conn.ok()) return "";
  const std::string line = command + "\n";
  EXPECT_TRUE(conn->WriteFull(line.data(), line.size()).ok());
  std::string reply;
  char byte = 0;
  while (conn->ReadFull(&byte, 1).ok()) reply.push_back(byte);
  return reply;
}

TEST(LoopbackTest, ObservabilityPlaneStitchesTracesMetricsAndStatus) {
  RemoteFedConfig config = BaseConfig();
  config.split.num_clients = 6;
  config.num_workers = 3;
  config.sim.rounds = 2;
  config.status_port = 0;

  const std::string dir = testing::TempDir();
  const std::string server_trace = dir + "/fedgta_lb_server_trace.json";
  const std::string merged = dir + "/fedgta_lb_merged_trace.json";
  std::vector<std::string> worker_traces;
  for (int w = 0; w < config.num_workers; ++w) {
    worker_traces.push_back(dir + "/fedgta_lb_worker_trace_" +
                            std::to_string(w) + ".json");
  }

  // The registry is process-global and cumulative across tests: everything
  // below is asserted as a diff against these baselines.
  const int64_t fleet_train0 =
      CounterValue("fleet.phase.remote_train.calls");
  std::vector<int64_t> worker_train0;
  for (int w = 0; w < config.num_workers; ++w) {
    worker_train0.push_back(CounterValue(
        "worker." + std::to_string(w) + ".phase.remote_train.calls"));
  }

  ClearTrace();
  SetTraceProcessId(1);
  SetTraceProcessName("fedgta_server");
  EnableTracing();

  RemoteCoordinator coordinator(config);
  ASSERT_TRUE(coordinator.Listen(0).ok());
  ASSERT_GT(coordinator.status_port(), 0);
  std::vector<pid_t> pids;
  for (int w = 0; w < config.num_workers; ++w) {
    pids.push_back(SpawnWorker(coordinator.port(), /*max_train_requests=*/0,
                               worker_traces[static_cast<size_t>(w)]));
  }
  Result<SimulationResult> remote = coordinator.Run();
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  DisableTracing();
  ASSERT_TRUE(remote.ok()) << remote.status();

  // --- Fleet metrics: the server-side rollups are exact. -------------------
  // 2 rounds x 6 clients = 12 train requests across the fleet; each worker
  // piggybacked its phase counter increments on the responses.
  const int rounds_x_clients = config.sim.rounds * config.split.num_clients;
  EXPECT_EQ(CounterValue("fleet.phase.remote_train.calls") - fleet_train0,
            rounds_x_clients);
  int64_t worker_sum = 0;
  for (int w = 0; w < config.num_workers; ++w) {
    worker_sum +=
        CounterValue("worker." + std::to_string(w) +
                     ".phase.remote_train.calls") -
        worker_train0[static_cast<size_t>(w)];
  }
  EXPECT_EQ(worker_sum, rounds_x_clients);
  EXPECT_EQ(CounterValue("obs.fleet.merge_errors"), 0);

  // --- Status endpoint: still serving after Run() returns. -----------------
  const std::string status = QueryStatus(coordinator.status_port(), "status");
  EXPECT_NE(status.find("fedgta server status"), std::string::npos) << status;
  EXPECT_NE(status.find("round: 2/2"), std::string::npos) << status;
  EXPECT_NE(status.find("workers: 3"), std::string::npos) << status;
  const std::string timeline_reply =
      QueryStatus(coordinator.status_port(), "timeline");
  EXPECT_NE(timeline_reply.find("\"round_end\""), std::string::npos);
  const std::string metrics_reply =
      QueryStatus(coordinator.status_port(), "metrics.json");
  EXPECT_NE(metrics_reply.find("fleet.phase.remote_train.calls"),
            std::string::npos);

  // --- Merged trace: worker spans stitch into the server timeline. ---------
  ASSERT_TRUE(WriteChromeTrace(server_trace).ok());
  std::vector<std::string> inputs = {server_trace};
  for (const std::string& t : worker_traces) inputs.push_back(t);
  ASSERT_TRUE(MergeChromeTraces(inputs, merged).ok());

  std::ifstream in(merged);
  ASSERT_TRUE(in.good());
  int remote_train_spans = 0;
  std::map<std::string, std::set<std::string>> pids_by_trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"name\": \"remote_train\"") != std::string::npos) {
      ++remote_train_spans;
    }
    const size_t trace_pos = line.find("\"trace_id\": \"");
    const size_t pid_pos = line.find("\"pid\": ");
    if (trace_pos == std::string::npos || pid_pos == std::string::npos) {
      continue;
    }
    const size_t trace_begin = trace_pos + 13;
    const std::string trace_id =
        line.substr(trace_begin, line.find('"', trace_begin) - trace_begin);
    const size_t pid_begin = pid_pos + 7;  // strlen("\"pid\": ")
    const std::string pid =
        line.substr(pid_begin, line.find(',', pid_begin) - pid_begin);
    pids_by_trace[trace_id].insert(pid);
  }
  // One span per remote training execution, recorded inside the workers and
  // present in the merged file.
  EXPECT_EQ(remote_train_spans, rounds_x_clients);
  // The run's trace id appears on the server (pid 1) and at least one
  // worker process (pid >= 2): the cross-process stitch worked.
  bool stitched = false;
  for (const auto& [trace_id, trace_pids] : pids_by_trace) {
    if (trace_pids.size() >= 2) stitched = true;
  }
  EXPECT_TRUE(stitched) << "no trace id spans more than one process";

  // --- Determinism: observability must not perturb the computation. --------
  const SimulationResult local = RunInProcess(config);
  ExpectBitIdentical(*remote, local);

  std::remove(server_trace.c_str());
  std::remove(merged.c_str());
  for (const std::string& t : worker_traces) std::remove(t.c_str());
}

TEST(LoopbackTest, DeltaCompressedRunSavesBytesAndStaysAccurate) {
  RemoteFedConfig config = BaseConfig();
  config.num_workers = 3;
  config.compress = "delta";
  config.status_port = 0;
  // A model big enough for auto top-k to sparsify (96*64 + 64*7 weights >
  // kDeltaAutoFloor); the tiny SGC head ships whole under the auto floor,
  // which is correct behaviour but saves nothing to assert on.
  config.model.type = ModelType::kGcn;
  config.model.hidden = 64;

  const int64_t wire0 = CounterValue("net.bytes_wire");
  const int64_t raw0 = CounterValue("net.bytes_raw");

  RemoteCoordinator coordinator(config);
  ASSERT_TRUE(coordinator.Listen(0).ok());
  std::vector<pid_t> pids;
  for (int w = 0; w < config.num_workers; ++w) {
    pids.push_back(SpawnWorker(coordinator.port()));
  }
  Result<SimulationResult> remote = coordinator.Run();
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  ASSERT_TRUE(remote.ok()) << remote.status();

  // Delta sparsification is lossy on uploads, so exact bit-identity is off
  // the table — but the run must stay in the oracle's neighborhood.
  const SimulationResult local = RunInProcess(config);
  EXPECT_GT(remote->final_test_accuracy, 0.1);
  EXPECT_NEAR(remote->final_test_accuracy, local.final_test_accuracy, 0.15);

  // The server saved bytes: raw (what the traffic would have cost) grew
  // faster than wire (what actually crossed the socket). Both sides of the
  // savings land here — send-side via SendFrame, recv-side post-decode.
  const int64_t wire = CounterValue("net.bytes_wire") - wire0;
  const int64_t raw = CounterValue("net.bytes_raw") - raw0;
  ASSERT_GT(wire, 0);
  EXPECT_GT(raw, wire) << "compression engaged but saved nothing";

  // The live status endpoint reports the wire plane.
  const std::string status = QueryStatus(coordinator.status_port(), "status");
  EXPECT_NE(status.find("net (compress=delta):"), std::string::npos)
      << status;
  EXPECT_NE(status.find("compression_ratio:"), std::string::npos) << status;
}

TEST(LoopbackTest, CompressionNegotiatesToRawAgainstRestrictedWorkers) {
  // The server asks for delta but every worker advertises nothing
  // (--compress=off) — the same degradation path a v3 peer takes. The
  // negotiated-raw run must stay bit-identical to the in-process oracle:
  // no Link is constructed, so the bytes are the legacy wire format.
  RemoteFedConfig config = BaseConfig();
  config.num_workers = 2;
  config.sim.rounds = 2;
  config.compress = "delta";
  std::vector<int> exit_codes;
  Result<SimulationResult> remote =
      RunRemote(config, /*max_train_requests=*/0, &exit_codes, "off");
  ASSERT_TRUE(remote.ok()) << remote.status();
  for (int code : exit_codes) EXPECT_EQ(code, 0);
  ExpectBitIdentical(*remote, RunInProcess(config));
}

TEST(LoopbackTest, KilledWorkerDegradesToDroppedClients) {
  RemoteFedConfig config = BaseConfig();
  config.strategy = "fedavg";
  config.split.num_clients = 6;
  config.num_workers = 2;
  config.sim.rounds = 2;
  config.rpc.deadline_ms = 3000;
  config.rpc.max_attempts = 2;
  config.rpc.backoff_ms = 20;

  Counter& dropped = GlobalMetrics().GetCounter("fed.round.dropped_clients");
  Counter& retries = GlobalMetrics().GetCounter("net.connect_retries");
  const int64_t dropped0 = dropped.value();
  const int64_t retries0 = retries.value();

  // Every worker vanishes after serving exactly one train request: round 1
  // gets 2 uploads out of 6, the rest of the federation is unreachable.
  Result<SimulationResult> remote =
      RunRemote(config, /*max_train_requests=*/1);
  ASSERT_TRUE(remote.ok()) << remote.status();

  // Round 1: 2 healthy, 4 dropped. Round 2: all 6 dropped.
  EXPECT_EQ(remote->total_dropped_clients, 10);
  ASSERT_EQ(remote->curve.size(), 2u);
  EXPECT_EQ(remote->curve[0].dropped_clients, 4);
  EXPECT_EQ(remote->curve[1].dropped_clients, 10);
  // Aggregation still happened over round 1's survivors.
  EXPECT_GT(remote->total_upload_floats, 0);
  // The transport failures are visible in the metrics registry.
  EXPECT_EQ(dropped.value() - dropped0, 10);
  EXPECT_GE(retries.value() - retries0, 1);
}

}  // namespace
}  // namespace fedgta
