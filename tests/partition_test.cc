#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/metrics.h"
#include "partition/louvain.h"
#include "partition/metis.h"
#include "partition/splitter.h"

namespace fedgta {
namespace {

// Two well-separated communities joined by a single bridge edge.
Graph TwoCliques(int size) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < size; ++i) {
    for (NodeId j = i + 1; j < size; ++j) {
      edges.push_back({i, j});
      edges.push_back({static_cast<NodeId>(size + i),
                       static_cast<NodeId>(size + j)});
    }
  }
  edges.push_back({0, static_cast<NodeId>(size)});
  return Graph::FromEdges(static_cast<NodeId>(2 * size), edges);
}

TEST(LouvainTest, RecoversTwoCliques) {
  Graph g = TwoCliques(8);
  Rng rng(1);
  const std::vector<int> comm = LouvainCommunities(g, rng);
  // All of clique A share a community, all of clique B share another.
  for (int i = 1; i < 8; ++i) EXPECT_EQ(comm[0], comm[static_cast<size_t>(i)]);
  for (int i = 9; i < 16; ++i) EXPECT_EQ(comm[8], comm[static_cast<size_t>(i)]);
  EXPECT_NE(comm[0], comm[8]);
}

TEST(LouvainTest, CommunityIdsAreCompact) {
  Graph g = TwoCliques(5);
  Rng rng(2);
  const std::vector<int> comm = LouvainCommunities(g, rng);
  std::set<int> ids(comm.begin(), comm.end());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int>(ids.size()) - 1);
}

TEST(LouvainTest, EdgelessGraphIsSingletons) {
  Graph g = Graph::FromEdges(4, {});
  Rng rng(3);
  const std::vector<int> comm = LouvainCommunities(g, rng);
  std::set<int> ids(comm.begin(), comm.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(LouvainTest, ImprovesModularityOnSbm) {
  SbmConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_classes = 5;
  cfg.avg_degree = 10.0;
  cfg.homophily = 0.9;
  Rng rng(5);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Rng lrng(6);
  const std::vector<int> comm = LouvainCommunities(lg.graph, lrng);
  const double q = Modularity(lg.graph, comm);
  EXPECT_GT(q, 0.4) << "Louvain should find strong community structure";
  // Louvain communities should be label-coherent under high homophily:
  // majority label should dominate most communities.
  const int num_comm = 1 + *std::max_element(comm.begin(), comm.end());
  EXPECT_GE(num_comm, 5);
}

TEST(LouvainTest, DeterministicPerSeed) {
  Graph g = TwoCliques(10);
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(LouvainCommunities(g, a), LouvainCommunities(g, b));
}

TEST(MetisTest, PartitionCountAndCoverage) {
  SbmConfig cfg;
  cfg.num_nodes = 800;
  cfg.num_classes = 4;
  cfg.avg_degree = 8.0;
  Rng rng(7);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Rng prng(8);
  const std::vector<int> parts = MetisPartition(lg.graph, 6, prng);
  ASSERT_EQ(parts.size(), 800u);
  std::vector<int> count(6, 0);
  for (int p : parts) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 6);
    ++count[static_cast<size_t>(p)];
  }
  for (int c : count) EXPECT_GT(c, 0);
}

TEST(MetisTest, BalancedParts) {
  SbmConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_classes = 5;
  cfg.avg_degree = 10.0;
  Rng rng(11);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Rng prng(12);
  const std::vector<int> parts = MetisPartition(lg.graph, 5, prng);
  std::vector<int> count(5, 0);
  for (int p : parts) ++count[static_cast<size_t>(p)];
  // Target 200 per part with 1.10 balance factor, give some slack for the
  // coarse granularity of matching-based multilevel partitioning.
  for (int c : count) {
    EXPECT_GT(c, 100);
    EXPECT_LT(c, 320);
  }
}

TEST(MetisTest, CutBeatsRandomAssignment) {
  SbmConfig cfg;
  cfg.num_nodes = 1200;
  cfg.num_classes = 6;
  cfg.avg_degree = 10.0;
  cfg.homophily = 0.85;
  Rng rng(13);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Rng prng(14);
  const std::vector<int> parts = MetisPartition(lg.graph, 6, prng);
  std::vector<int> random_parts(1200);
  Rng rrng(15);
  for (int& p : random_parts) p = static_cast<int>(rrng.UniformInt(0, 5));
  EXPECT_LT(EdgeCut(lg.graph, parts), EdgeCut(lg.graph, random_parts) / 2)
      << "multilevel partitioning should cut far fewer edges than random";
}

TEST(MetisTest, SinglePartTrivial) {
  Graph g = TwoCliques(4);
  Rng rng(1);
  const std::vector<int> parts = MetisPartition(g, 1, rng);
  for (int p : parts) EXPECT_EQ(p, 0);
  EXPECT_EQ(EdgeCut(g, parts), 0);
}

TEST(MetisTest, KEqualsNodes) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Rng rng(2);
  const std::vector<int> parts = MetisPartition(g, 6, rng);
  std::set<int> ids(parts.begin(), parts.end());
  EXPECT_EQ(ids.size(), 6u);
}

TEST(EdgeCutTest, CountsCrossingEdges) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(EdgeCut(g, {0, 0, 1, 1}), 1);
  EXPECT_EQ(EdgeCut(g, {0, 1, 0, 1}), 3);
  EXPECT_EQ(EdgeCut(g, {0, 0, 0, 0}), 0);
}

TEST(SplitMethodTest, NamesRoundTrip) {
  EXPECT_STREQ(SplitMethodName(SplitMethod::kLouvain), "louvain");
  EXPECT_STREQ(SplitMethodName(SplitMethod::kMetis), "metis");
  EXPECT_EQ(*ParseSplitMethod("louvain"), SplitMethod::kLouvain);
  EXPECT_EQ(*ParseSplitMethod("metis"), SplitMethod::kMetis);
  EXPECT_FALSE(ParseSplitMethod("kmeans").ok());
}

class FederatedSplitTest : public ::testing::TestWithParam<SplitMethod> {};

TEST_P(FederatedSplitTest, PartitionsAllNodesExactlyOnce) {
  SbmConfig cfg;
  cfg.num_nodes = 900;
  cfg.num_classes = 6;
  cfg.avg_degree = 8.0;
  Rng rng(31);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  SplitConfig split;
  split.method = GetParam();
  split.num_clients = 7;
  Rng srng(32);
  const auto clients = FederatedSplit(lg.graph, split, srng);
  ASSERT_EQ(clients.size(), 7u);
  std::vector<int> seen(900, 0);
  for (const auto& nodes : clients) {
    EXPECT_FALSE(nodes.empty());
    for (NodeId v : nodes) ++seen[static_cast<size_t>(v)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_P(FederatedSplitTest, ClientsAreLabelSkewed) {
  // The core premise of the paper (Fig. 1a): community-based splits yield
  // label Non-iid clients.
  SbmConfig cfg;
  cfg.num_nodes = 2000;
  cfg.num_classes = 8;
  cfg.avg_degree = 10.0;
  cfg.homophily = 0.9;
  cfg.regions_per_class = 3;
  Rng rng(41);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  SplitConfig split;
  split.method = GetParam();
  split.num_clients = 8;
  Rng srng(42);
  const auto clients = FederatedSplit(lg.graph, split, srng);
  // Average fraction of the majority class per client should far exceed
  // the global fraction (~1/8).
  double majority = 0.0;
  for (const auto& nodes : clients) {
    std::vector<int64_t> hist(8, 0);
    for (NodeId v : nodes) ++hist[static_cast<size_t>(lg.labels[static_cast<size_t>(v)])];
    majority += static_cast<double>(*std::max_element(hist.begin(), hist.end())) /
                static_cast<double>(nodes.size());
  }
  majority /= static_cast<double>(clients.size());
  EXPECT_GT(majority, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Methods, FederatedSplitTest,
                         ::testing::Values(SplitMethod::kLouvain,
                                           SplitMethod::kMetis));

TEST(FederatedSplitTest, MoreClientsThanCommunities) {
  // Two cliques but 4 clients: communities must be split.
  Graph g = TwoCliques(10);
  SplitConfig split;
  split.method = SplitMethod::kLouvain;
  split.num_clients = 4;
  Rng rng(51);
  const auto clients = FederatedSplit(g, split, rng);
  ASSERT_EQ(clients.size(), 4u);
  for (const auto& nodes : clients) EXPECT_FALSE(nodes.empty());
}

}  // namespace
}  // namespace fedgta
