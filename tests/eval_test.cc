#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "eval/csv.h"
#include "eval/experiment.h"

namespace fedgta {
namespace {

TEST(CsvTest, WritesHeaderAndRows) {
  std::vector<RoundStats> curve(2);
  curve[0].round = 1;
  curve[0].test_accuracy = 0.5;
  curve[0].upload_floats = 100;
  curve[1].round = 2;
  curve[1].test_accuracy = 0.75;
  const std::string path = ::testing::TempDir() + "/fedgta_curve.csv";
  FEDGTA_CHECK_OK(WriteCurvesCsv(path, {{"fedavg", curve}, {"fedgta", {}}}));

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("label,round,test_acc"), std::string::npos);
  std::getline(in, line);
  EXPECT_EQ(line.rfind("fedavg,1,0.5", 0), 0u);
  std::getline(in, line);
  EXPECT_EQ(line.rfind("fedavg,2,0.75", 0), 0u);
  EXPECT_FALSE(std::getline(in, line)) << "empty curve adds no rows";
  std::remove(path.c_str());
}

TEST(CsvTest, UnwritablePathIsError) {
  const Status status =
      WriteCurvesCsv("/nonexistent-dir/x.csv", {{"a", {}}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ExperimentConfigTest, DefaultsAreRunnable) {
  ExperimentConfig config;
  config.model.type = ModelType::kSgc;
  config.model.k = 2;
  config.sim.rounds = 3;
  config.sim.eval_every = 1;
  config.repeats = 1;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.test_accuracy.mean, 0.0);
  EXPECT_EQ(result.curve.size(), 3u);
  EXPECT_GT(result.mean_upload_mb, 0.0);
  EXPECT_GT(result.mean_download_mb, 0.0);
}

TEST(ExperimentTest, SeedChangesResults) {
  ExperimentConfig config;
  config.model.type = ModelType::kSgc;
  config.model.k = 2;
  config.sim.rounds = 3;
  config.repeats = 1;
  config.seed = 1;
  const double a = RunExperiment(config).test_accuracy.mean;
  config.seed = 2;
  const double b = RunExperiment(config).test_accuracy.mean;
  config.seed = 1;
  const double a_again = RunExperiment(config).test_accuracy.mean;
  EXPECT_DOUBLE_EQ(a, a_again);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fedgta
