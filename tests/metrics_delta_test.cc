// Contract tests for the piggybacked metrics plane (obs/metrics_delta.h):
// snapshot diffing, the wire round-trip, the idempotent fleet merge, and
// histogram bucket addition — the pieces that keep worker.<id>.* / fleet.*
// rollups exact under RPC retries.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "obs/metrics.h"
#include "obs/metrics_delta.h"

namespace fedgta {
namespace {

MetricsDelta RoundTrip(const MetricsDelta& delta) {
  serialize::Writer w;
  EncodeMetricsDelta(delta, &w);
  serialize::Reader r(w.payload());
  MetricsDelta out;
  EXPECT_TRUE(DecodeMetricsDelta(&r, &out).ok());
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(MetricsDeltaTest, DiffThenApplyReproducesSnapshot) {
  MetricsRegistry reg;
  reg.GetCounter("a.calls").Increment(3);
  reg.GetGauge("g").Set(1.5);
  Histogram& h = reg.GetHistogram("h.seconds", {0.1, 1.0});
  h.Record(0.05);
  const MetricsSnapshot from = reg.Capture();

  reg.GetCounter("a.calls").Increment(4);
  reg.GetCounter("b.calls").Increment(1);  // new since `from`
  reg.GetGauge("g").Set(-2.0);
  h.Record(0.5);
  h.Record(10.0);  // overflow bucket
  const MetricsSnapshot to = reg.Capture();

  const MetricsDelta delta = DiffSnapshots(from, to);
  EXPECT_EQ(delta.counters.at("a.calls"), 4);
  EXPECT_EQ(delta.counters.at("b.calls"), 1);
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), -2.0);
  ASSERT_TRUE(delta.histograms.count("h.seconds"));
  EXPECT_EQ(delta.histograms.at("h.seconds").count, 2);

  MetricsSnapshot replay = from;
  ApplySnapshotDelta(&replay, delta);
  EXPECT_EQ(replay.counters, to.counters);
  EXPECT_EQ(replay.gauges, to.gauges);
  ASSERT_TRUE(replay.histograms.count("h.seconds"));
  const Histogram::Snapshot& got = replay.histograms.at("h.seconds");
  const Histogram::Snapshot& want = to.histograms.at("h.seconds");
  EXPECT_EQ(got.count, want.count);
  EXPECT_DOUBLE_EQ(got.sum, want.sum);
  EXPECT_DOUBLE_EQ(got.min, want.min);
  EXPECT_DOUBLE_EQ(got.max, want.max);
  EXPECT_EQ(got.bucket_counts, want.bucket_counts);
}

TEST(MetricsDeltaTest, UnchangedMetricsStayOutOfTheDelta) {
  MetricsRegistry reg;
  reg.GetCounter("steady.calls").Increment(5);
  reg.GetGauge("steady.value").Set(3.0);
  reg.GetHistogram("steady.seconds").Record(1.0);
  const MetricsSnapshot snap = reg.Capture();
  const MetricsDelta delta = DiffSnapshots(snap, snap);
  EXPECT_TRUE(delta.empty());
}

TEST(MetricsDeltaTest, WireRoundTripPreservesEverything) {
  MetricsDelta delta;
  delta.seq = 42;
  delta.counters["net.bytes_sent"] = 123456789;
  delta.counters["negative.adjustment"] = -7;
  delta.gauges["temp"] = 0.25;
  MetricsDelta::HistogramDelta h;
  h.count = 3;
  h.sum = 1.75;
  h.min = 0.25;
  h.max = 1.0;
  h.bounds = {0.5, 1.0};
  h.buckets = {1, 2, 0};
  delta.histograms["lat"] = h;

  const MetricsDelta out = RoundTrip(delta);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.counters, delta.counters);
  EXPECT_EQ(out.gauges, delta.gauges);
  ASSERT_TRUE(out.histograms.count("lat"));
  EXPECT_EQ(out.histograms.at("lat").count, 3);
  EXPECT_DOUBLE_EQ(out.histograms.at("lat").sum, 1.75);
  EXPECT_EQ(out.histograms.at("lat").bounds, h.bounds);
  EXPECT_EQ(out.histograms.at("lat").buckets, h.buckets);
}

TEST(MetricsDeltaTest, DecodeRejectsBucketBoundsMismatch) {
  MetricsDelta delta;
  delta.seq = 1;
  MetricsDelta::HistogramDelta h;
  h.count = 1;
  h.bounds = {0.5};
  h.buckets = {1};  // must be bounds.size() + 1 == 2
  delta.histograms["bad"] = h;
  serialize::Writer w;
  EncodeMetricsDelta(delta, &w);
  serialize::Reader r(w.payload());
  MetricsDelta out;
  EXPECT_FALSE(DecodeMetricsDelta(&r, &out).ok());
}

TEST(MetricsDeltaEncoderTest, SuccessiveDeltasCarryOnlyIncrements) {
  MetricsRegistry reg;
  MetricsDeltaEncoder encoder(&reg);

  reg.GetCounter("phase.train.calls").Increment(2);
  MetricsDelta first = encoder.Next();
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.counters.at("phase.train.calls"), 2);

  // Nothing changed: the next delta is empty (but still sequenced).
  MetricsDelta second = encoder.Next();
  EXPECT_EQ(second.seq, 2u);
  EXPECT_TRUE(second.empty());

  reg.GetCounter("phase.train.calls").Increment(3);
  MetricsDelta third = encoder.Next();
  EXPECT_EQ(third.counters.at("phase.train.calls"), 3);
}

TEST(FleetMetricsMergerTest, BuildsWorkerAndFleetNamespaces) {
  MetricsRegistry target;
  FleetMetricsMerger merger(&target);

  MetricsDelta d0;
  d0.seq = 1;
  d0.counters["phase.train.calls"] = 4;
  d0.gauges["queue"] = 2.0;
  EXPECT_TRUE(merger.Apply(0, d0));

  MetricsDelta d1;
  d1.seq = 1;
  d1.counters["phase.train.calls"] = 6;
  EXPECT_TRUE(merger.Apply(1, d1));

  EXPECT_EQ(target.FindCounter("worker.0.phase.train.calls")->value(), 4);
  EXPECT_EQ(target.FindCounter("worker.1.phase.train.calls")->value(), 6);
  EXPECT_EQ(target.FindCounter("fleet.phase.train.calls")->value(), 10);
  // Gauges land per-worker only: a fleet-wide last-write-wins is
  // meaningless.
  EXPECT_DOUBLE_EQ(target.FindGauge("worker.0.queue")->value(), 2.0);
  EXPECT_EQ(target.FindGauge("fleet.queue"), nullptr);
}

TEST(FleetMetricsMergerTest, DuplicateSeqIsDroppedNotDoubleCounted) {
  MetricsRegistry target;
  FleetMetricsMerger merger(&target);
  MetricsDelta d;
  d.seq = 7;
  d.counters["net.rpcs"] = 5;
  EXPECT_TRUE(merger.Apply(3, d));
  // Same delta re-delivered after an RPC retry: dropped.
  EXPECT_FALSE(merger.Apply(3, d));
  d.seq = 6;  // stale too
  EXPECT_FALSE(merger.Apply(3, d));
  EXPECT_EQ(target.FindCounter("fleet.net.rpcs")->value(), 5);
  // A genuinely newer delta still lands.
  d.seq = 8;
  EXPECT_TRUE(merger.Apply(3, d));
  EXPECT_EQ(target.FindCounter("fleet.net.rpcs")->value(), 10);
  // Per-worker seq spaces are independent.
  d.seq = 7;
  EXPECT_TRUE(merger.Apply(4, d));
}

TEST(FleetMetricsMergerTest, HistogramBucketsMergeExactly) {
  MetricsRegistry target;
  FleetMetricsMerger merger(&target);

  MetricsDelta d;
  d.seq = 1;
  MetricsDelta::HistogramDelta h;
  h.count = 2;
  h.sum = 0.6;
  h.min = 0.1;
  h.max = 0.5;
  h.bounds = {0.25, 1.0};
  h.buckets = {1, 1, 0};
  d.histograms["lat.seconds"] = h;
  ASSERT_TRUE(merger.Apply(0, d));

  d.seq = 2;
  h.count = 1;
  h.sum = 2.0;
  h.min = 0.1;  // sender absolutes
  h.max = 2.0;
  h.buckets = {0, 0, 1};
  d.histograms["lat.seconds"] = h;
  ASSERT_TRUE(merger.Apply(0, d));

  const Histogram* fleet = target.FindHistogram("fleet.lat.seconds");
  ASSERT_NE(fleet, nullptr);
  const Histogram::Snapshot s = fleet->snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 2.6);
  EXPECT_DOUBLE_EQ(s.min, 0.1);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  ASSERT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[0], 1);
  EXPECT_EQ(s.bucket_counts[1], 1);
  EXPECT_EQ(s.bucket_counts[2], 1);
}

TEST(FleetMetricsMergerTest, BoundsMismatchIsCountedAndSkipped) {
  MetricsRegistry target;
  FleetMetricsMerger merger(&target);

  MetricsDelta d;
  d.seq = 1;
  MetricsDelta::HistogramDelta h;
  h.count = 1;
  h.bounds = {1.0};
  h.buckets = {1, 0};
  d.histograms["lat"] = h;
  ASSERT_TRUE(merger.Apply(0, d));

  // Same name, different bounds: the merge is refused, not corrupted.
  d.seq = 2;
  h.bounds = {2.0};
  d.histograms["lat"] = h;
  ASSERT_TRUE(merger.Apply(0, d));

  EXPECT_EQ(target.FindHistogram("fleet.lat")->count(), 1);
  const Counter* errors = target.FindCounter("obs.fleet.merge_errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_GE(errors->value(), 1);
}

TEST(HistogramMergeTest, RefusesMismatchedBoundsWithoutModification) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);
  Histogram other({1.0, 3.0});
  other.Record(0.5);
  EXPECT_FALSE(h.Merge(other.snapshot()));
  EXPECT_EQ(h.count(), 1);  // untouched

  Histogram same({1.0, 2.0});
  same.Record(1.5);
  EXPECT_TRUE(h.Merge(same.snapshot()));
  EXPECT_EQ(h.count(), 2);
  // Merging an empty snapshot is a no-op that still succeeds.
  EXPECT_TRUE(h.Merge(Histogram({9.0}).snapshot()));
  EXPECT_EQ(h.count(), 2);
}

}  // namespace
}  // namespace fedgta
