#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/compress/codec.h"
#include "net/frame.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "net/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedgta {
namespace net {
namespace {

// Handcrafts the defined 12-byte little-endian wire header so tests can
// send malformed frames byte by byte. Deliberately NOT a struct copy: the
// header is a specified byte layout, independent of any compiler's padding
// or endianness (frame.h documents it).
std::string MakeHeader(uint32_t magic, uint64_t payload_size) {
  std::string h(kFrameHeaderBytes, '\0');
  for (int i = 0; i < 4; ++i) {
    h[static_cast<size_t>(i)] = static_cast<char>((magic >> (8 * i)) & 0xFF);
  }
  for (int i = 0; i < 8; ++i) {
    h[static_cast<size_t>(4 + i)] =
        static_cast<char>((payload_size >> (8 * i)) & 0xFF);
  }
  return h;
}

// Listens on an ephemeral port and returns {server, connected client pair}.
struct Loop {
  ServerSocket server;
  Socket client;  // dialing side
  Socket peer;    // accepted side
};

Loop MakeLoop() {
  Loop loop;
  Result<ServerSocket> server = ServerSocket::Listen(0);
  EXPECT_TRUE(server.ok()) << server.status();
  loop.server = std::move(*server);
  Result<Socket> client = Connect("127.0.0.1", loop.server.port(), 2000);
  EXPECT_TRUE(client.ok()) << client.status();
  loop.client = std::move(*client);
  Result<Socket> peer = loop.server.Accept(2000);
  EXPECT_TRUE(peer.ok()) << peer.status();
  loop.peer = std::move(*peer);
  return loop;
}

TEST(SocketTest, ReadFullReassemblesByteAtATimeWrites) {
  Loop loop = MakeLoop();
  std::vector<char> sent(1000);
  for (size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>(i * 31 + 7);
  }
  std::thread writer([&] {
    for (char byte : sent) {
      ASSERT_TRUE(loop.peer.WriteFull(&byte, 1).ok());
    }
  });
  std::vector<char> got(sent.size());
  const Status read = loop.client.ReadFull(got.data(), got.size());
  writer.join();
  ASSERT_TRUE(read.ok()) << read;
  EXPECT_EQ(got, sent);
}

TEST(SocketTest, PeerCloseMidMessageIsErrorNotCrash) {
  Loop loop = MakeLoop();
  std::thread writer([&] {
    const char some[10] = {};
    ASSERT_TRUE(loop.peer.WriteFull(some, sizeof(some)).ok());
    loop.peer.Close();
  });
  char buf[64];
  const Status read = loop.client.ReadFull(buf, sizeof(buf));
  writer.join();
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kInternal) << read;
}

TEST(SocketTest, RecvTimeoutSurfacesAsDeadlineExceeded) {
  Loop loop = MakeLoop();
  ASSERT_TRUE(loop.client.SetRecvTimeout(50).ok());
  char buf[8];
  const Status read = loop.client.ReadFull(buf, sizeof(buf));
  EXPECT_EQ(read.code(), StatusCode::kDeadlineExceeded) << read;
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then close it so nothing listens there.
  int dead_port = 0;
  {
    Result<ServerSocket> server = ServerSocket::Listen(0);
    ASSERT_TRUE(server.ok());
    dead_port = server->port();
  }
  Result<Socket> conn = Connect("127.0.0.1", dead_port, 500);
  EXPECT_FALSE(conn.ok());
}

TEST(FrameTest, RoundTripsAWriterPayload) {
  Loop loop = MakeLoop();
  serialize::Writer writer;
  writer.WriteU32(0xDEADu);
  writer.WriteString("hello frame");
  const std::vector<float> floats = {1.5f, -2.5f, 3.25f};
  writer.WriteFloatVec(floats);
  std::thread sender(
      [&] { ASSERT_TRUE(SendFrame(loop.peer, writer).ok()); });
  Result<serialize::Reader> reader = RecvFrame(loop.client);
  sender.join();
  ASSERT_TRUE(reader.ok()) << reader.status();
  uint32_t tag = 0;
  std::string text;
  std::vector<float> vec;
  ASSERT_TRUE(reader->ReadU32(&tag).ok());
  ASSERT_TRUE(reader->ReadString(&text).ok());
  ASSERT_TRUE(reader->ReadFloatVec(&vec).ok());
  EXPECT_EQ(tag, 0xDEADu);
  EXPECT_EQ(text, "hello frame");
  EXPECT_EQ(vec, (std::vector<float>{1.5f, -2.5f, 3.25f}));
  EXPECT_TRUE(reader->AtEnd());
}

TEST(FrameTest, FlippedPayloadBitIsErrorStatus) {
  Loop loop = MakeLoop();
  serialize::Writer writer;
  writer.WriteString("soon to be corrupted");
  std::string encoded = writer.Encode();
  encoded.back() = static_cast<char>(encoded.back() ^ 0x40);

  const std::string header = MakeHeader(kFrameMagic, encoded.size());
  ASSERT_TRUE(loop.peer.WriteFull(header.data(), header.size()).ok());
  ASSERT_TRUE(loop.peer.WriteFull(encoded.data(), encoded.size()).ok());

  Result<serialize::Reader> reader = RecvFrame(loop.client);
  EXPECT_FALSE(reader.ok());
}

TEST(FrameTest, TruncatedFrameIsErrorStatus) {
  Loop loop = MakeLoop();
  // Declares 100 payload bytes... but only 10 follow.
  const std::string header = MakeHeader(kFrameMagic, 100);
  ASSERT_TRUE(loop.peer.WriteFull(header.data(), header.size()).ok());
  const char partial[10] = {};
  ASSERT_TRUE(loop.peer.WriteFull(partial, sizeof(partial)).ok());
  loop.peer.Close();
  Result<serialize::Reader> reader = RecvFrame(loop.client);
  EXPECT_FALSE(reader.ok());
}

TEST(FrameTest, BadMagicIsErrorStatus) {
  Loop loop = MakeLoop();
  const std::string header = MakeHeader(0x12345678, 4);
  ASSERT_TRUE(loop.peer.WriteFull(header.data(), header.size()).ok());
  Result<serialize::Reader> reader = RecvFrame(loop.client);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizeDeclaredPayloadIsRejectedBeforeAllocation) {
  Loop loop = MakeLoop();
  const std::string header = MakeHeader(kFrameMagic, kMaxFramePayload + 1);
  ASSERT_TRUE(loop.peer.WriteFull(header.data(), header.size()).ok());
  Result<serialize::Reader> reader = RecvFrame(loop.client);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(RpcTest, WireFedConfigRoundTrips) {
  WireFedConfig in;
  in.dataset = "citeseer";
  in.seed = 1234;
  in.split_method = "metis";
  in.num_clients = 7;
  in.overlap_fraction = 0.25;
  in.model = "sgc";
  in.hidden = 32;
  in.num_layers = 3;
  in.model_k = 4;
  in.dropout = 0.1f;
  in.optimizer = "sgd";
  in.lr = 0.05f;
  in.strategy = "fedprox";
  in.prox_mu = 0.125f;
  in.gta_alpha = 0.75f;
  in.gta_k = 2;
  in.gta_use_feature_moments = true;
  in.local_epochs = 4;
  in.batch_size = 64;
  in.fail_dropout = 0.125;
  in.fail_seed = 99;
  in.async = true;
  in.staleness_tau = 3;
  in.staleness_decay = 0.625;

  serialize::Writer writer;
  in.Encode(&writer);
  Result<serialize::Reader> reader =
      serialize::Reader::FromBuffer(writer.Encode());
  ASSERT_TRUE(reader.ok()) << reader.status();
  WireFedConfig out;
  ASSERT_TRUE(out.Decode(&*reader).ok());
  EXPECT_TRUE(reader->AtEnd());
  EXPECT_EQ(out.dataset, in.dataset);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.split_method, in.split_method);
  EXPECT_EQ(out.num_clients, in.num_clients);
  EXPECT_EQ(out.overlap_fraction, in.overlap_fraction);
  EXPECT_EQ(out.model, in.model);
  EXPECT_EQ(out.hidden, in.hidden);
  EXPECT_EQ(out.num_layers, in.num_layers);
  EXPECT_EQ(out.model_k, in.model_k);
  EXPECT_EQ(out.dropout, in.dropout);
  EXPECT_EQ(out.optimizer, in.optimizer);
  EXPECT_EQ(out.lr, in.lr);
  EXPECT_EQ(out.strategy, in.strategy);
  EXPECT_EQ(out.prox_mu, in.prox_mu);
  EXPECT_EQ(out.gta_alpha, in.gta_alpha);
  EXPECT_EQ(out.gta_k, in.gta_k);
  EXPECT_EQ(out.gta_use_feature_moments, in.gta_use_feature_moments);
  EXPECT_EQ(out.local_epochs, in.local_epochs);
  EXPECT_EQ(out.batch_size, in.batch_size);
  EXPECT_EQ(out.fail_dropout, in.fail_dropout);
  EXPECT_EQ(out.fail_seed, in.fail_seed);
  EXPECT_EQ(out.async, in.async);
  EXPECT_EQ(out.staleness_tau, in.staleness_tau);
  EXPECT_EQ(out.staleness_decay, in.staleness_decay);
}

TEST(RpcTest, ChannelEchoesARequestResponseExchange) {
  Loop loop = MakeLoop();
  std::thread server([&] {
    EvalRequestMsg req;
    ASSERT_TRUE(ExpectMessage(loop.peer, &req).ok());
    EvalResponseMsg resp;
    resp.client_id = req.client_id;
    resp.test_accuracy = 0.75;
    resp.val_accuracy = 0.5;
    ASSERT_TRUE(SendMessage(loop.peer, resp).ok());
  });
  RpcOptions options;
  options.deadline_ms = 2000;
  RpcChannel channel(std::move(loop.client), options);
  ASSERT_TRUE(channel.ok());
  EvalRequestMsg req;
  req.client_id = 7;
  req.weights = {1.0f, 2.0f};
  EvalResponseMsg resp;
  const Status called = channel.Call(req, &resp);
  server.join();
  ASSERT_TRUE(called.ok()) << called;
  EXPECT_EQ(resp.client_id, 7);
  EXPECT_EQ(resp.test_accuracy, 0.75);
  EXPECT_TRUE(channel.ok());
}

TEST(RpcTest, BlownDeadlinePoisonsTheChannel) {
  Loop loop = MakeLoop();
  RpcOptions options;
  options.deadline_ms = 100;
  options.max_attempts = 3;
  options.backoff_ms = 10;
  RpcChannel channel(std::move(loop.client), options);
  EvalRequestMsg req;
  req.client_id = 1;
  EvalResponseMsg resp;
  // The peer never answers: the deadline expires and — because a late
  // response would desynchronize the stream — there is no retry.
  const Status first = channel.Call(req, &resp);
  EXPECT_EQ(first.code(), StatusCode::kDeadlineExceeded) << first;
  EXPECT_FALSE(channel.ok());
  const Status second = channel.Call(req, &resp);
  EXPECT_FALSE(second.ok());
}

TEST(RpcTest, ErrorMsgSurfacesAsFailedPreconditionWithText) {
  Loop loop = MakeLoop();
  std::thread server([&] {
    ErrorMsg err;
    err.message = "unknown strategy: gcfl+";
    ASSERT_TRUE(SendMessage(loop.peer, err).ok());
  });
  ShutdownAckMsg ack;
  const Status got = ExpectMessage(loop.client, &ack);
  server.join();
  ASSERT_EQ(got.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(got.ToString().find("unknown strategy"), std::string::npos);
}

TEST(RpcTest, TypeMismatchIsProtocolError) {
  Loop loop = MakeLoop();
  std::thread server([&] {
    HelloMsg hello;
    ASSERT_TRUE(SendMessage(loop.peer, hello).ok());
  });
  ShutdownAckMsg ack;
  const Status got = ExpectMessage(loop.client, &ack);
  server.join();
  EXPECT_EQ(got.code(), StatusCode::kInvalidArgument);
}

TEST(RpcTest, ConnectWithRetryCountsRetriesAndGivesUp) {
  int dead_port = 0;
  {
    Result<ServerSocket> server = ServerSocket::Listen(0);
    ASSERT_TRUE(server.ok());
    dead_port = server->port();
  }
  Counter& retries = GlobalMetrics().GetCounter("net.connect_retries");
  const int64_t before = retries.value();
  RpcOptions options;
  options.max_attempts = 3;
  options.backoff_ms = 5;
  options.deadline_ms = 200;
  Result<Socket> conn = ConnectWithRetry("127.0.0.1", dead_port, options);
  EXPECT_FALSE(conn.ok());
  EXPECT_GE(retries.value() - before, 2);
}

TEST(RpcTest, EnvelopeCarriesTheSendersTraceContext) {
  Loop loop = MakeLoop();
  TraceContext ctx;
  ctx.trace_id = 0x1234ABCDu;
  ctx.span_id = 0x42u;
  ctx.round = 9;
  std::thread sender([&] {
    ScopedTraceContext install(ctx);
    HelloMsg hello;
    ASSERT_TRUE(SendMessage(loop.peer, hello).ok());
  });
  Result<serialize::Reader> reader = RecvMessage(loop.client);
  sender.join();
  ASSERT_TRUE(reader.ok()) << reader.status();
  TraceContext got;
  Result<MsgType> type = ReadMsgType(&*reader, &got);
  ASSERT_TRUE(type.ok()) << type.status();
  EXPECT_EQ(*type, MsgType::kHello);
  EXPECT_EQ(got.trace_id, ctx.trace_id);
  EXPECT_EQ(got.span_id, ctx.span_id);
  EXPECT_EQ(got.round, 9);
  // The envelope is consumed even when the caller does not ask for it —
  // the payload that follows must decode either way.
  HelloMsg hello;
  EXPECT_TRUE(hello.Decode(&*reader).ok());
  EXPECT_TRUE(reader->AtEnd());
}

TEST(RpcTest, EnvelopeIsConsumedWithoutAContextPointer) {
  Loop loop = MakeLoop();
  std::thread sender([&] {
    HelloMsg hello;
    ASSERT_TRUE(SendMessage(loop.peer, hello).ok());
  });
  Result<serialize::Reader> reader = RecvMessage(loop.client);
  sender.join();
  ASSERT_TRUE(reader.ok()) << reader.status();
  Result<MsgType> type = ReadMsgType(&*reader);
  ASSERT_TRUE(type.ok()) << type.status();
  HelloMsg hello;
  EXPECT_TRUE(hello.Decode(&*reader).ok());
  EXPECT_TRUE(reader->AtEnd());
}

TEST(RpcTest, HelloAssignClockStampsRoundTrip) {
  Loop loop = MakeLoop();
  std::thread sender([&] {
    AssignConfigMsg assign;
    assign.hello_recv_us = 111;
    assign.assign_send_us = 222;
    assign.worker_index = 3;
    ASSERT_TRUE(SendMessage(loop.peer, assign).ok());
  });
  AssignConfigMsg got;
  const Status received = ExpectMessage(loop.client, &got);
  sender.join();
  ASSERT_TRUE(received.ok()) << received;
  EXPECT_EQ(got.hello_recv_us, 111);
  EXPECT_EQ(got.assign_send_us, 222);
  EXPECT_EQ(got.worker_index, 3);
}

TEST(RpcTest, TrainResponsePiggybacksAMetricsDelta) {
  Loop loop = MakeLoop();
  std::thread sender([&] {
    TrainResponseMsg resp;
    resp.client_id = 4;
    // v3 round echo: async responses arrive out of round order, so the
    // dispatch round must survive the wire rather than being inferred.
    resp.round = 9;
    resp.metrics.seq = 17;
    resp.metrics.counters["phase.remote_train.calls"] = 2;
    ASSERT_TRUE(SendMessage(loop.peer, resp).ok());
  });
  TrainResponseMsg got;
  const Status received = ExpectMessage(loop.client, &got);
  sender.join();
  ASSERT_TRUE(received.ok()) << received;
  EXPECT_EQ(got.client_id, 4);
  EXPECT_EQ(got.round, 9);
  EXPECT_EQ(got.metrics.seq, 17u);
  EXPECT_EQ(got.metrics.counters.at("phase.remote_train.calls"), 2);
}

TEST(StatusServerTest, ServesLineRequestsUntilStopped) {
  StatusServer status;
  ASSERT_TRUE(status.Bind(0).ok());
  ASSERT_TRUE(status.bound());
  ASSERT_GT(status.port(), 0);
  status.Start([](const std::string& request) {
    return "echo:" + request + "\n";
  });

  const auto query = [&](const std::string& request) {
    Result<Socket> conn = Connect("127.0.0.1", status.port(), 2000);
    EXPECT_TRUE(conn.ok()) << conn.status();
    const std::string line = request + "\n";
    EXPECT_TRUE(conn->WriteFull(line.data(), line.size()).ok());
    std::string reply;
    char byte = 0;
    while (conn->ReadFull(&byte, 1).ok()) reply.push_back(byte);
    return reply;
  };

  EXPECT_EQ(query("status"), "echo:status\n");
  // CRLF clients (telnet-style) get the same answer.
  Result<Socket> crlf = Connect("127.0.0.1", status.port(), 2000);
  ASSERT_TRUE(crlf.ok());
  const std::string line = "metrics\r\n";
  ASSERT_TRUE(crlf->WriteFull(line.data(), line.size()).ok());
  std::string reply;
  char byte = 0;
  while (crlf->ReadFull(&byte, 1).ok()) reply.push_back(byte);
  EXPECT_EQ(reply, "echo:metrics\n");

  status.Stop();
  // After Stop the port no longer accepts.
  Result<Socket> dead = Connect("127.0.0.1", status.port(), 200);
  EXPECT_FALSE(dead.ok());
}

TEST(StatusServerTest, UnboundServerIsInertAndStopIsIdempotent) {
  StatusServer status;
  EXPECT_FALSE(status.bound());
  EXPECT_EQ(status.port(), -1);
  status.Start([](const std::string&) { return std::string(); });  // no-op
  status.Stop();
  status.Stop();
}

TEST(RpcTest, MessageBytesAreCountedByTheFrameLayer) {
  Counter& sent = GlobalMetrics().GetCounter("net.bytes_sent");
  Counter& recv = GlobalMetrics().GetCounter("net.bytes_recv");
  Counter& messages = GlobalMetrics().GetCounter("net.messages");
  const int64_t sent0 = sent.value();
  const int64_t recv0 = recv.value();
  const int64_t messages0 = messages.value();

  Loop loop = MakeLoop();
  std::thread server([&] {
    HelloMsg hello;
    ASSERT_TRUE(ExpectMessage(loop.peer, &hello).ok());
  });
  HelloMsg hello;
  ASSERT_TRUE(SendMessage(loop.client, hello).ok());
  server.join();
  EXPECT_GT(sent.value(), sent0);
  EXPECT_GT(recv.value(), recv0);
  EXPECT_GE(messages.value() - messages0, 2);
}

TEST(FrameTest, WireHeaderIsExactTwelveByteLittleEndianLayout) {
  Loop loop = MakeLoop();
  serialize::Writer writer;
  writer.WriteU32(0xABCDu);
  const std::string encoded = writer.Encode();
  std::thread sender(
      [&] { ASSERT_TRUE(SendFrame(loop.peer, writer).ok()); });
  std::vector<char> raw(kFrameHeaderBytes + encoded.size());
  ASSERT_TRUE(loop.client.ReadFull(raw.data(), raw.size()).ok());
  sender.join();
  // Bytes 0-3: the raw-frame magic, little-endian "FGNF".
  EXPECT_EQ(raw[0], 'F');
  EXPECT_EQ(raw[1], 'G');
  EXPECT_EQ(raw[2], 'N');
  EXPECT_EQ(raw[3], 'F');
  // Bytes 4-11: payload size, little-endian u64.
  uint64_t size = 0;
  for (int i = 0; i < 8; ++i) {
    size |= static_cast<uint64_t>(static_cast<uint8_t>(raw[4 + i]))
            << (8 * i);
  }
  EXPECT_EQ(size, encoded.size());
  // The payload follows verbatim.
  EXPECT_EQ(std::string(raw.begin() + kFrameHeaderBytes, raw.end()), encoded);
}

TEST(FrameTest, CompressedFrameKindRoundTripsWithDistinctMagic) {
  Loop loop = MakeLoop();
  serialize::Writer writer;
  writer.WriteString("compressed-kind payload");
  std::thread sender([&] {
    ASSERT_TRUE(SendFrame(loop.peer, writer, FrameKind::kCompressed).ok());
  });
  FrameKind kind = FrameKind::kRaw;
  Result<serialize::Reader> reader = RecvFrame(loop.client, &kind);
  sender.join();
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(kind, FrameKind::kCompressed);
  std::string text;
  ASSERT_TRUE(reader->ReadString(&text).ok());
  EXPECT_EQ(text, "compressed-kind payload");
  // The compressed magic is "FGNZ" — a v3 binary's magic check rejects it
  // rather than misparsing (compressed frames are only sent after a v4
  // negotiation, so this is belt and braces).
  EXPECT_NE(kFrameMagic, kFrameMagicCompressed);
}

TEST(RpcTest, HelloCodecCapabilitiesRoundTrip) {
  Loop loop = MakeLoop();
  std::thread sender([&] {
    HelloMsg hello;
    hello.codec_capabilities = compress::AllCapabilities();
    ASSERT_TRUE(SendMessage(loop.peer, hello).ok());
  });
  HelloMsg got;
  const Status received = ExpectMessage(loop.client, &got);
  sender.join();
  ASSERT_TRUE(received.ok()) << received;
  EXPECT_EQ(got.protocol_version, kProtocolVersion);
  EXPECT_EQ(got.codec_capabilities, compress::AllCapabilities());
}

TEST(RpcTest, V3ShapedHelloDecodesToZeroCapabilities) {
  // A v3 hello body stops after the clock stamp — no capabilities word.
  serialize::Writer w;
  w.WriteU32(3u);       // protocol_version
  w.WriteI64(123456);   // t_send_us
  const std::string encoded = w.Encode();
  Result<serialize::Reader> reader = serialize::Reader::FromBuffer(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  HelloMsg hello;
  ASSERT_TRUE(hello.Decode(&*reader).ok());
  EXPECT_EQ(hello.protocol_version, 3u);
  EXPECT_EQ(hello.t_send_us, 123456);
  // No capabilities advertised means every negotiation lands on raw.
  EXPECT_EQ(hello.codec_capabilities, 0u);
  EXPECT_EQ(compress::Negotiate(compress::CodecId::kDelta,
                                hello.codec_capabilities),
            compress::CodecId::kRaw);
}

TEST(RpcTest, AssignConfigV4TrailerRoundTrips) {
  AssignConfigMsg in;
  in.worker_index = 1;
  in.codec_id = static_cast<uint32_t>(compress::CodecId::kDelta);
  in.compress_topk = 64;
  in.peer_version = 4;
  serialize::Writer w;
  in.Encode(&w);
  const std::string encoded = w.Encode();
  Result<serialize::Reader> reader = serialize::Reader::FromBuffer(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  AssignConfigMsg out;
  ASSERT_TRUE(out.Decode(&*reader).ok());
  EXPECT_TRUE(reader->AtEnd());
  EXPECT_EQ(out.codec_id, static_cast<uint32_t>(compress::CodecId::kDelta));
  EXPECT_EQ(out.compress_topk, 64);
}

TEST(RpcTest, V3PeerGetsNoAssignConfigTrailer) {
  // Encoding for a v3 peer must stop exactly where the v3 decoder stops:
  // its strict AtEnd check rejects any trailing bytes.
  AssignConfigMsg in;
  in.codec_id = static_cast<uint32_t>(compress::CodecId::kFp16);
  in.compress_topk = 8;
  in.peer_version = 3;
  serialize::Writer w;
  in.Encode(&w);
  const std::string encoded = w.Encode();
  Result<serialize::Reader> reader = serialize::Reader::FromBuffer(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  AssignConfigMsg out;
  ASSERT_TRUE(out.Decode(&*reader).ok());
  EXPECT_TRUE(reader->AtEnd());
  // The v4-only fields decode to their raw defaults.
  EXPECT_EQ(out.codec_id, 0u);
  EXPECT_EQ(out.compress_topk, 0);
}

TEST(RpcTest, CompressedLinkRoundTripsTrainTensors) {
  // End-to-end over a socket pair: server-side link encodes the download,
  // worker-side link decodes it, and the worker's upload (top-k delta
  // against that download) reconstructs exactly at the shipped indices.
  const compress::Codec* delta = compress::FindCodec("delta");
  ASSERT_NE(delta, nullptr);
  compress::Link server_link(delta, 0);
  compress::Link worker_link(delta, 0);
  Loop loop = MakeLoop();

  std::vector<float> download(256);
  for (size_t i = 0; i < download.size(); ++i) {
    download[i] = 0.01f * static_cast<float>(i);
  }
  std::thread server([&] {
    TrainRequestMsg req;
    req.client_id = 7;
    req.round = 1;
    req.weights = download;
    ASSERT_TRUE(SendMessage(loop.peer, req, &server_link).ok());
    TrainResponseMsg resp;
    ASSERT_TRUE(ExpectMessage(loop.peer, &resp, &server_link).ok());
    EXPECT_EQ(resp.client_id, 7);
    ASSERT_EQ(resp.weights.size(), download.size());
    // Unchanged elements reconstruct from the base; changed ones exactly.
    EXPECT_EQ(resp.weights[3], 42.0f);
    EXPECT_EQ(resp.weights[10], download[10]);
  });

  TrainRequestMsg req;
  ASSERT_TRUE(ExpectMessage(loop.client, &req, &worker_link).ok());
  ASSERT_EQ(req.weights.size(), download.size());
  EXPECT_EQ(req.weights, download);  // downloads ship dense: bit-exact
  TrainResponseMsg resp;
  resp.client_id = 7;
  resp.round = 1;
  resp.weights = req.weights;
  resp.weights[3] = 42.0f;  // one changed element; top-k auto = 256/8 = 32
  ASSERT_TRUE(SendMessage(loop.client, resp, &worker_link).ok());
  server.join();
}

TEST(RpcTest, HelloEncodesByteIdenticalToVersionReferences) {
  // Downgrade proof for the shared TrailerWriter: the Hello body must be
  // byte-identical to the hand-written layout of each protocol version.
  // v3 stops after the clock stamp, v4 appends the capabilities word, v5
  // appends the role word. The dialer always writes its newest layout, so
  // the full encode must equal the v5 reference exactly.
  HelloMsg hello;
  hello.t_send_us = 777;
  hello.codec_capabilities = 0x0Fu;
  hello.node_role = static_cast<uint32_t>(NodeRole::kAggregator);
  serialize::Writer w;
  hello.Encode(&w);

  serialize::Writer v5;
  v5.WriteU32(kProtocolVersion);
  v5.WriteI64(777);
  v5.WriteU32(0x0Fu);  // v4 trailer field
  v5.WriteU32(1u);     // v5 trailer field: NodeRole::kAggregator
  EXPECT_EQ(w.Encode(), v5.Encode());
}

TEST(RpcTest, V4ShapedHelloDecodesRoleToWorker) {
  // A v4 hello ends after the capabilities word; the missing v5 role
  // field must default to worker so pre-v5 fleets keep their meaning.
  serialize::Writer w;
  w.WriteU32(4u);
  w.WriteI64(42);
  w.WriteU32(compress::AllCapabilities());
  const std::string encoded = w.Encode();
  Result<serialize::Reader> reader = serialize::Reader::FromBuffer(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  HelloMsg hello;
  ASSERT_TRUE(hello.Decode(&*reader).ok());
  EXPECT_TRUE(reader->AtEnd());
  EXPECT_EQ(hello.codec_capabilities, compress::AllCapabilities());
  EXPECT_EQ(hello.node_role, static_cast<uint32_t>(NodeRole::kWorker));
}

TEST(RpcTest, AssignConfigV5BytesMatchV4) {
  // v5 added no AssignConfig fields, so encoding for a v5 peer must be
  // byte-identical to the v4 layout — the trailer only grows when a
  // version actually appends something.
  AssignConfigMsg in;
  in.worker_index = 3;
  in.codec_id = static_cast<uint32_t>(compress::CodecId::kInt8);
  in.compress_topk = 16;
  serialize::Writer w4;
  in.peer_version = 4;
  in.Encode(&w4);
  serialize::Writer w5;
  in.peer_version = 5;
  in.Encode(&w5);
  EXPECT_EQ(w4.Encode(), w5.Encode());
}

TEST(RpcTest, RoutedMsgRoundTripsOverSocket) {
  // The v5 generic envelope: kind + routing header + opaque body. The
  // hierarchy's typed payloads all ride inside `body`, so the transport
  // layer only needs this frame to round-trip losslessly.
  Loop loop = MakeLoop();
  std::thread sender([&] {
    RoutedMsg msg;
    msg.kind = static_cast<uint32_t>(EnvelopeKind::kSignatureExchange);
    msg.round = 12;
    msg.src = 0;
    msg.dst = 2;
    msg.body = std::string("\x00\x01payload\xFF", 10);
    ASSERT_TRUE(SendMessage(loop.peer, msg).ok());
  });
  RoutedMsg got;
  const Status received = ExpectMessage(loop.client, &got);
  sender.join();
  ASSERT_TRUE(received.ok()) << received;
  EXPECT_EQ(got.kind, static_cast<uint32_t>(EnvelopeKind::kSignatureExchange));
  EXPECT_EQ(got.round, 12);
  EXPECT_EQ(got.src, 0);
  EXPECT_EQ(got.dst, 2);
  EXPECT_EQ(got.body, std::string("\x00\x01payload\xFF", 10));
  EXPECT_STREQ(EnvelopeKindName(static_cast<EnvelopeKind>(got.kind)),
               "SignatureExchange");
}

}  // namespace
}  // namespace net
}  // namespace fedgta
