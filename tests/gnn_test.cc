#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "gnn/factory.h"
#include "gnn/gamlp.h"
#include "gnn/propagation.h"
#include "graph/generator.h"
#include "graph/normalized_adjacency.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace fedgta {
namespace {

// A small fixed labeled graph and features for model tests.
struct TestInput {
  Graph graph;
  Graph graph_train;
  Matrix features;
  std::vector<int> labels;
  std::vector<int32_t> train_rows;
  ModelInput input;
};

TestInput MakeTestInput(uint64_t seed, bool inductive = false) {
  TestInput t;
  SbmConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_classes = 3;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.9;
  cfg.regions_per_class = 1;
  Rng rng(seed);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  t.graph = std::move(lg.graph);
  FeatureConfig fcfg;
  fcfg.dim = 5;
  fcfg.center_scale = 1.0f;
  fcfg.noise_scale = 0.7f;
  t.features = GenerateFeatures(lg.labels, 3, fcfg, rng);
  t.labels = std::move(lg.labels);
  for (int32_t i = 0; i < 40; ++i) t.train_rows.push_back(i);
  if (inductive) {
    // Drop edges touching the last 10 nodes for the training view.
    std::vector<Edge> kept;
    for (const Edge& e : t.graph.UndirectedEdges()) {
      if (e.u < 50 && e.v < 50) kept.push_back(e);
    }
    t.graph_train = Graph::FromEdges(t.graph.num_nodes(), kept);
    t.input.graph_train = &t.graph_train;
  } else {
    t.input.graph_train = &t.graph;
  }
  t.input.graph_full = &t.graph;
  t.input.features = &t.features;
  t.input.num_classes = 3;
  return t;
}

ModelConfig ConfigFor(ModelType type) {
  ModelConfig cfg;
  cfg.type = type;
  cfg.hidden = 8;
  cfg.num_layers = 2;
  cfg.k = 3;
  cfg.dropout = 0.0f;  // deterministic for gradient checks
  return cfg;
}

class ModelTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(ModelTest, ForwardShape) {
  TestInput t = MakeTestInput(1);
  auto model = MakeModel(ConfigFor(GetParam()));
  Rng rng(2);
  model->Prepare(t.input, rng);
  const Matrix logits = model->Forward(false);
  EXPECT_EQ(logits.rows(), 60);
  EXPECT_EQ(logits.cols(), 3);
  EXPECT_EQ(model->name(), ModelTypeName(GetParam()));
}

TEST_P(ModelTest, GradientsMatchFiniteDifferences) {
  TestInput t = MakeTestInput(3);
  auto model = MakeModel(ConfigFor(GetParam()));
  Rng rng(4);
  model->Prepare(t.input, rng);

  const auto params = model->Params();
  Matrix dlogits;
  auto loss_fn = [&]() {
    model->ZeroGrad();
    const Matrix logits = model->Forward(/*training=*/true);
    const double loss =
        SoftmaxCrossEntropy(logits, t.labels, t.train_rows, &dlogits);
    model->Backward(dlogits, nullptr);
    return loss;
  };
  (void)loss_fn();
  std::vector<float> analytic = FlattenGrads(params);
  std::vector<float> flat = FlattenParams(params);
  const float eps = 1e-2f;
  const size_t stride = std::max<size_t>(1, flat.size() / 30);
  for (size_t i = 0; i < flat.size(); i += stride) {
    const float saved = flat[i];
    flat[i] = saved + eps;
    UnflattenParams(flat, params);
    const double lp = loss_fn();
    flat[i] = saved - eps;
    UnflattenParams(flat, params);
    const double lm = loss_fn();
    flat[i] = saved;
    UnflattenParams(flat, params);
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                3e-2 * std::max(1.0, std::fabs(numeric)))
        << ModelTypeName(GetParam()) << " param " << i;
  }
}

TEST_P(ModelTest, LearnsEasyTask) {
  TestInput t = MakeTestInput(5);
  ModelConfig cfg = ConfigFor(GetParam());
  auto model = MakeModel(cfg);
  Rng rng(6);
  model->Prepare(t.input, rng);

  OptimizerConfig opt_cfg;
  opt_cfg.lr = 0.05f;
  opt_cfg.weight_decay = 0.0f;
  auto opt = MakeOptimizer(opt_cfg);
  const auto params = model->Params();

  Matrix dlogits;
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const Matrix logits = model->Forward(true);
    const double loss =
        SoftmaxCrossEntropy(logits, t.labels, t.train_rows, &dlogits);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
    model->ZeroGrad();
    model->Backward(dlogits, nullptr);
    opt->Step(params);
  }
  EXPECT_LT(last_loss, 0.5 * first_loss) << ModelTypeName(GetParam());
  const double train_acc =
      Accuracy(model->Forward(false), t.labels, t.train_rows);
  EXPECT_GT(train_acc, 0.85) << ModelTypeName(GetParam());
}

TEST_P(ModelTest, InductiveViewsDiffer) {
  TestInput t = MakeTestInput(7, /*inductive=*/true);
  ModelConfig cfg = ConfigFor(GetParam());
  auto model = MakeModel(cfg);
  Rng rng(8);
  model->Prepare(t.input, rng);
  const Matrix train_logits = model->Forward(true);
  const Matrix full_logits = model->Forward(false);
  EXPECT_FALSE(train_logits.AllClose(full_logits, 1e-6f))
      << "training view must exclude test edges";
}

TEST_P(ModelTest, ParamRoundTripPreservesOutputs) {
  TestInput t = MakeTestInput(9);
  auto model = MakeModel(ConfigFor(GetParam()));
  Rng rng(10);
  model->Prepare(t.input, rng);
  const Matrix before = model->Forward(false);
  const auto params = model->Params();
  std::vector<float> flat = FlattenParams(params);
  // Perturb then restore.
  std::vector<float> perturbed = flat;
  for (float& v : perturbed) v += 0.5f;
  UnflattenParams(perturbed, params);
  const Matrix changed = model->Forward(false);
  EXPECT_FALSE(before.AllClose(changed, 1e-6f));
  UnflattenParams(flat, params);
  const Matrix after = model->Forward(false);
  EXPECT_TRUE(before.AllClose(after));
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, ModelTest,
                         ::testing::Values(ModelType::kGcn, ModelType::kSage,
                                           ModelType::kSgc, ModelType::kSign,
                                           ModelType::kS2gc, ModelType::kGbp,
                                           ModelType::kGamlp),
                         [](const auto& info) {
                           return std::string(ModelTypeName(info.param));
                         });

TEST(PropagationTest, HopsMatchRepeatedMultiply) {
  TestInput t = MakeTestInput(11);
  const CsrMatrix adj = NormalizedAdjacency(t.graph);
  const auto hops = PropagateHops(adj, t.features, 3);
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_TRUE(hops[0].AllClose(t.features));
  Matrix manual = t.features;
  for (int l = 1; l <= 3; ++l) {
    manual = adj * manual;
    EXPECT_TRUE(hops[static_cast<size_t>(l)].AllClose(manual, 1e-4f));
  }
  EXPECT_TRUE(PropagateK(adj, t.features, 3).AllClose(manual, 1e-4f));
  EXPECT_TRUE(PropagateK(adj, t.features, 0).AllClose(t.features));
}

TEST(PropagationTest, SmoothingReducesVariance) {
  TestInput t = MakeTestInput(12);
  const CsrMatrix adj = NormalizedAdjacency(t.graph);
  const Matrix smoothed = PropagateK(adj, t.features, 5);
  // Spectral norm of Ã is <= 1: propagated magnitude should not blow up,
  // and repeated smoothing shrinks it on connected graphs.
  EXPECT_LT(smoothed.FrobeniusNorm(), t.features.FrobeniusNorm() * 1.01);
}

TEST(SgcTest, HasSingleLinearLayer) {
  TestInput t = MakeTestInput(13);
  ModelConfig cfg = ConfigFor(ModelType::kSgc);
  auto model = MakeModel(cfg);
  Rng rng(14);
  model->Prepare(t.input, rng);
  // 5 input dims x 3 classes + 3 bias.
  EXPECT_EQ(ParamCount(model->Params()), 5 * 3 + 3);
}

TEST(SignTest, ConcatenatesAllHops) {
  TestInput t = MakeTestInput(15);
  ModelConfig cfg = ConfigFor(ModelType::kSign);
  cfg.k = 2;
  cfg.num_layers = 1;  // linear head exposes the input dim directly
  auto model = MakeModel(cfg);
  Rng rng(16);
  model->Prepare(t.input, rng);
  // Input dim = (k+1) * f = 3 * 5 = 15.
  EXPECT_EQ(ParamCount(model->Params()), 15 * 3 + 3);
}

TEST(GamlpTest, AttentionIsSoftmax) {
  TestInput t = MakeTestInput(17);
  GamlpModel model(3, 8, 2, 0.0f, 0.5f);
  Rng rng(18);
  model.Prepare(t.input, rng);
  const auto attention = model.HopAttention();
  ASSERT_EQ(attention.size(), 4u);
  float sum = 0.0f;
  for (float a : attention) {
    EXPECT_GT(a, 0.0f);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  // Fresh gates are zero: uniform attention.
  for (float a : attention) EXPECT_NEAR(a, 0.25f, 1e-5f);
}

TEST(GamlpTest, GatesReceiveGradient) {
  TestInput t = MakeTestInput(19);
  GamlpModel model(2, 8, 2, 0.0f, 0.5f);
  Rng rng(20);
  model.Prepare(t.input, rng);
  Matrix dlogits;
  const Matrix logits = model.Forward(true);
  (void)SoftmaxCrossEntropy(logits, t.labels, t.train_rows, &dlogits);
  model.ZeroGrad();
  model.Backward(dlogits, nullptr);
  // The gate parameter is the last ParamRef.
  const auto params = model.Params();
  EXPECT_GT(params.back().grad->FrobeniusNorm(), 0.0);
}

TEST(FactoryTest, NamesRoundTrip) {
  for (ModelType type :
       {ModelType::kGcn, ModelType::kSage, ModelType::kSgc, ModelType::kSign,
        ModelType::kS2gc, ModelType::kGbp, ModelType::kGamlp}) {
    const Result<ModelType> parsed = ParseModelType(ModelTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseModelType("transformer").ok());
}

TEST(HiddenTest, MoonHookSeesLastHidden) {
  TestInput t = MakeTestInput(21);
  ModelConfig cfg = ConfigFor(ModelType::kGcn);
  auto model = MakeModel(cfg);
  Rng rng(22);
  model->Prepare(t.input, rng);
  (void)model->Forward(false);
  const Matrix& hidden = model->Hidden();
  EXPECT_EQ(hidden.rows(), 60);
  EXPECT_EQ(hidden.cols(), 8);
}

}  // namespace
}  // namespace fedgta
