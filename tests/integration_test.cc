// End-to-end tests exercising the full pipeline: dataset synthesis ->
// federated split -> strategy-managed training -> evaluation. These are the
// behavioural claims of the paper at miniature scale.

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace fedgta {
namespace {

ExperimentConfig FastConfig(const std::string& dataset,
                            const std::string& strategy) {
  ExperimentConfig config;
  config.dataset = dataset;
  config.strategy = strategy;
  config.split.num_clients = 5;
  config.model.type = ModelType::kSgc;
  config.model.k = 2;
  config.model.dropout = 0.0f;
  config.sim.rounds = 8;
  config.sim.local_epochs = 2;
  config.sim.eval_every = 2;
  config.repeats = 1;
  config.seed = 7;
  return config;
}

TEST(IntegrationTest, EveryStrategyCompletesOnCora) {
  for (const std::string& strategy : ListStrategies()) {
    ExperimentConfig config = FastConfig("cora", strategy);
    const ExperimentResult result = RunExperiment(config);
    EXPECT_GT(result.test_accuracy.mean, 25.0)
        << strategy << " should beat random guessing (7 classes)";
    EXPECT_LE(result.test_accuracy.mean, 100.0);
    EXPECT_FALSE(result.curve.empty());
  }
}

TEST(IntegrationTest, FedGtaBeatsFedAvgUnderLabelNonIid) {
  // The paper's central claim (Tables 3-4) at miniature scale.
  ExperimentConfig config = FastConfig("cora", "fedavg");
  config.sim.rounds = 15;
  config.repeats = 2;
  const double fedavg = RunExperiment(config).test_accuracy.mean;
  config.strategy = "fedgta";
  const double fedgta = RunExperiment(config).test_accuracy.mean;
  EXPECT_GT(fedgta, fedavg - 1.0)
      << "FedGTA should not lose to FedAvg under the Non-iid split";
}

TEST(IntegrationTest, MetisSplitWorksEndToEnd) {
  ExperimentConfig config = FastConfig("citeseer", "fedgta");
  config.split.method = SplitMethod::kMetis;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.test_accuracy.mean, 25.0);
}

TEST(IntegrationTest, InductiveDatasetEndToEnd) {
  ExperimentConfig config = FastConfig("flickr", "fedgta");
  config.split.method = SplitMethod::kMetis;
  config.model.type = ModelType::kSign;
  config.model.num_layers = 2;
  config.model.hidden = 16;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.test_accuracy.mean, 20.0);
}

TEST(IntegrationTest, CentralizedGlobalBaseline) {
  ModelConfig model;
  model.type = ModelType::kSgc;
  model.k = 2;
  model.dropout = 0.0f;
  const MeanStd global =
      RunCentralized("cora", model, OptimizerConfig{}, 30, 1, 7);
  EXPECT_GT(global.mean, 50.0);
}

TEST(IntegrationTest, FedGlWrapperTrains) {
  ExperimentConfig config = FastConfig("cora", "fedavg");
  config.sim.fgl = FglModel::kFedGl;
  config.federated_options.overlap_fraction = 0.1;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.test_accuracy.mean, 25.0);
}

TEST(IntegrationTest, FedSageWrapperTrains) {
  ExperimentConfig config = FastConfig("cora", "fedavg");
  config.sim.fgl = FglModel::kFedSage;
  config.sim.fedsage.gen_epochs = 5;
  config.sim.fedsage.gen_fed_rounds = 1;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.test_accuracy.mean, 25.0);
  EXPECT_GT(result.mean_setup_seconds, 0.0);
}

TEST(IntegrationTest, AblationSwitchesChangeBehaviour) {
  ExperimentConfig config = FastConfig("cora", "fedgta");
  config.sim.rounds = 10;
  const double full = RunExperiment(config).test_accuracy.mean;
  config.strategy_options.fedgta.disable_moments = true;
  const double no_moments = RunExperiment(config).test_accuracy.mean;
  config.strategy_options.fedgta.disable_moments = false;
  config.strategy_options.fedgta.disable_confidence = true;
  const double no_confidence = RunExperiment(config).test_accuracy.mean;
  // All three run; exact ordering is dataset-dependent at this tiny scale,
  // but the switches must produce distinct training dynamics.
  EXPECT_TRUE(full != no_moments || full != no_confidence);
}

TEST(IntegrationTest, ParticipationSamplingStillLearns) {
  ExperimentConfig config = FastConfig("cora", "fedgta");
  config.split.num_clients = 10;
  config.sim.participation = 0.3;
  config.sim.rounds = 25;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.test_accuracy.mean, 25.0);
}

TEST(IntegrationTest, RepeatsReportSpread) {
  ExperimentConfig config = FastConfig("cora", "fedavg");
  config.repeats = 2;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GE(result.test_accuracy.stddev, 0.0);
}

}  // namespace
}  // namespace fedgta
