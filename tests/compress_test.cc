// Wire-compression plane tests (DESIGN.md §5j): varint/zigzag primitives,
// fp16/int8 quantization against their documented error bounds on
// adversarial tensors, delta exact-reconstruction and desync detection,
// corruption fuzzing (malformed blobs are error Statuses, never crashes),
// negotiation, and the per-connection Link's stream lifecycle.

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "net/compress/codec.h"
#include "net/compress/wire.h"

namespace fedgta {
namespace net {
namespace compress {
namespace {

// Encodes `values` with `codec` through the full serialize stack and
// decodes it back, returning the decode Status; on success `out` holds the
// reconstruction.
Status RoundTrip(const Codec& codec, const std::vector<float>& values,
                 const TensorSpec& encode_spec, const TensorSpec& decode_spec,
                 std::vector<float>* out) {
  serialize::Writer w;
  codec.Encode(values, encode_spec, &w);
  const std::string encoded = w.Encode();
  Result<serialize::Reader> reader = serialize::Reader::FromBuffer(encoded);
  if (!reader.ok()) return reader.status();
  FEDGTA_RETURN_IF_ERROR(codec.Decode(&*reader, decode_spec, out));
  if (!reader->AtEnd()) {
    return InternalError("codec left trailing bytes in the stream");
  }
  return OkStatus();
}

Status RoundTrip(const Codec& codec, const std::vector<float>& values,
                 std::vector<float>* out) {
  return RoundTrip(codec, values, TensorSpec{}, TensorSpec{}, out);
}

// The adversarial tensor menagerie the quantizer bounds are proven on.
std::vector<std::vector<float>> AdversarialTensors() {
  std::vector<std::vector<float>> tensors;
  tensors.push_back({});                            // empty
  tensors.push_back({0.0f, 0.0f, 0.0f, 0.0f});      // all zero
  tensors.push_back({1.0f, 1.0f, 1.0f});            // all equal
  tensors.push_back({-7.25f, -7.25f});              // all equal, negative
  tensors.push_back({1e-40f, -3e-41f, 5e-42f, 0.0f, -1e-40f});  // denormals
  tensors.push_back({1e8f, -1e8f, 1e-8f, -1e-8f, 0.5f});  // huge range
  tensors.push_back({std::numeric_limits<float>::max() / 4,
                     -std::numeric_limits<float>::max() / 4, 1.0f});
  // Deterministic pseudo-random mix, both signs, several magnitudes.
  std::vector<float> mixed(257);
  uint64_t state = 0x5714;
  for (float& v : mixed) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const float unit =
        static_cast<float>(static_cast<int64_t>(state >> 33) - (1ll << 30)) /
        static_cast<float>(1ll << 30);
    v = unit * static_cast<float>(1 + (state & 0xFF));
  }
  tensors.push_back(std::move(mixed));
  return tensors;
}

float MaxAbs(const std::vector<float>& values) {
  float m = 0.0f;
  for (float v : values) m = std::max(m, std::fabs(v));
  return m;
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint(v, &buf);
    size_t pos = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncationAndOverflowAreErrors) {
  std::string buf;
  PutVarint(1ull << 40, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t got = 0;
    EXPECT_FALSE(GetVarint(buf.substr(0, cut), &pos, &got).ok());
  }
  // 10 continuation bytes overflow 64 bits.
  const std::string evil(10, static_cast<char>(0xFF));
  size_t pos = 0;
  uint64_t got = 0;
  EXPECT_FALSE(GetVarint(evil, &pos, &got).ok());
}

TEST(ZigzagTest, RoundTripsSignedBoundaries) {
  const int64_t cases[] = {0,
                           -1,
                           1,
                           -2,
                           63,
                           -64,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) {
    std::string buf;
    PutZigzag(v, &buf);
    size_t pos = 0;
    int64_t got = 0;
    ASSERT_TRUE(GetZigzag(buf, &pos, &got).ok()) << v;
    EXPECT_EQ(got, v);
  }
  // Small magnitudes (either sign) stay one byte — the property the
  // encoding exists for.
  std::string buf;
  PutZigzag(-1, &buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(HalfFloatTest, ConvertsExactAndSpecialValues) {
  // Values exactly representable in binary16 survive unchanged.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.5f, 1024.0f, 6.103515625e-5f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
  // Overflow saturates to infinity; NaN stays NaN.
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e20f))));
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(
      std::numeric_limits<float>::quiet_NaN()))));
  // Half subnormals round-trip through the normalization path.
  const uint16_t half_min_subnormal = 0x0001;
  const float tiny = HalfToFloat(half_min_subnormal);
  EXPECT_GT(tiny, 0.0f);
  EXPECT_EQ(FloatToHalf(tiny), half_min_subnormal);
}

TEST(QuantizerTest, Fp16ErrorWithinDocumentedBound) {
  const Codec* fp16 = FindCodec("fp16");
  ASSERT_NE(fp16, nullptr);
  EXPECT_FALSE(fp16->lossless());
  for (const std::vector<float>& tensor : AdversarialTensors()) {
    std::vector<float> out;
    ASSERT_TRUE(RoundTrip(*fp16, tensor, &out).ok());
    ASSERT_EQ(out.size(), tensor.size());
    const float bound = MaxAbs(tensor) * 0x1p-10f;
    for (size_t i = 0; i < tensor.size(); ++i) {
      EXPECT_LE(std::fabs(out[i] - tensor[i]), bound)
          << "elem " << i << " of tensor with max " << MaxAbs(tensor);
    }
  }
}

TEST(QuantizerTest, Int8ErrorWithinDocumentedBound) {
  const Codec* int8 = FindCodec("int8");
  ASSERT_NE(int8, nullptr);
  EXPECT_FALSE(int8->lossless());
  for (const std::vector<float>& tensor : AdversarialTensors()) {
    std::vector<float> out;
    ASSERT_TRUE(RoundTrip(*int8, tensor, &out).ok());
    ASSERT_EQ(out.size(), tensor.size());
    const float bound = MaxAbs(tensor) / 253.0f;
    for (size_t i = 0; i < tensor.size(); ++i) {
      EXPECT_LE(std::fabs(out[i] - tensor[i]), bound) << "elem " << i;
    }
  }
}

TEST(QuantizerTest, AllZeroTensorIsExactAndTiny) {
  // scale == 0 ships no per-element payload at all.
  const std::vector<float> zeros(1000, 0.0f);
  for (const char* name : {"fp16", "int8"}) {
    const Codec* codec = FindCodec(name);
    ASSERT_NE(codec, nullptr);
    serialize::Writer w;
    codec->Encode(zeros, TensorSpec{}, &w);
    EXPECT_LT(w.payload().size(), 32u) << name;
    std::vector<float> out;
    ASSERT_TRUE(RoundTrip(*codec, zeros, &out).ok());
    EXPECT_EQ(out, zeros);
  }
}

TEST(QuantizerTest, ReconstructionOutputMatchesDecoderExactly) {
  // The encode-side `reconstruction` out-param must be bit-identical to
  // what the decoder produces — the delta Link's base bookkeeping depends
  // on it.
  for (const char* name : {"raw", "fp16", "int8", "delta"}) {
    const Codec* codec = FindCodec(name);
    ASSERT_NE(codec, nullptr);
    const std::vector<float> tensor = {3.14159f, -2.5f, 0.0f, 1e-6f, 88.0f};
    std::vector<float> predicted;
    TensorSpec spec;
    spec.reconstruction = &predicted;
    std::vector<float> out;
    ASSERT_TRUE(RoundTrip(*codec, tensor, spec, TensorSpec{}, &out).ok());
    ASSERT_EQ(predicted.size(), out.size()) << name;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(predicted[i], out[i]) << name << " elem " << i;
    }
  }
}

TEST(DeltaTest, NoBaseFallsBackToDenseAndIsBitExact) {
  const Codec* delta = FindCodec("delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_FALSE(delta->lossless());  // lossy only when sparsifying
  for (const std::vector<float>& tensor : AdversarialTensors()) {
    std::vector<float> out;
    ASSERT_TRUE(RoundTrip(*delta, tensor, &out).ok());
    ASSERT_EQ(out.size(), tensor.size());
    for (size_t i = 0; i < tensor.size(); ++i) {
      EXPECT_EQ(out[i], tensor[i]);  // dense section: bit-exact
    }
  }
}

TEST(DeltaTest, FullTopKAgainstBaseIsBitExact) {
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(64), values(64);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = 0.1f * static_cast<float>(i);
    values[i] = base[i] + (i % 3 == 0 ? 0.731f : -0.002f);
  }
  TensorSpec spec;
  spec.base = base;
  spec.base_seq = 7;
  spec.top_k = static_cast<int>(values.size());  // ship everything
  std::vector<float> out;
  ASSERT_TRUE(RoundTrip(*delta, values, spec, spec, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(DeltaTest, SparseShipsExactValuesAtChangedIndices) {
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(128, 1.0f);
  std::vector<float> values = base;
  values[5] = -3.0f;   // |diff| = 4
  values[77] = 2.5f;   // |diff| = 1.5
  TensorSpec spec;
  spec.base = base;
  spec.top_k = 2;
  std::vector<float> out;
  ASSERT_TRUE(RoundTrip(*delta, values, spec, spec, &out).ok());
  ASSERT_EQ(out.size(), values.size());
  // The two changed coordinates arrive as exact fp32 VALUES (not float
  // diffs, which would not reconstruct bit-exactly); the rest is the base.
  EXPECT_EQ(out[5], -3.0f);
  EXPECT_EQ(out[77], 2.5f);
  EXPECT_EQ(out[0], 1.0f);
}

TEST(DeltaTest, ResidualCarriesUnsentMassToTheNextRound) {
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(8, 0.0f);
  std::vector<float> values = {1.0f, 0.9f, 0.8f, 0.7f,
                               0.6f, 0.5f, 0.4f, 0.3f};
  std::vector<float> residual;
  TensorSpec spec;
  spec.base = base;
  spec.top_k = 2;
  spec.residual = &residual;
  serialize::Writer w;
  delta->Encode(values, spec, &w);
  ASSERT_EQ(residual.size(), values.size());
  // The two largest diffs shipped; their residual is cleared.
  EXPECT_EQ(residual[0], 0.0f);
  EXPECT_EQ(residual[1], 0.0f);
  // Unsent mass is left behind...
  EXPECT_EQ(residual[7], 0.3f);
  EXPECT_EQ(residual[2], 0.8f);
  // ...and biases the next round's selection: index 5's fresh 0.5 plus its
  // carried 0.5 (priority 1.0) and index 2's carried 0.8 outrank everyone,
  // so those two ship and clear while index 7 keeps accumulating.
  std::vector<float> next = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.5f, 0.0f, 0.3f};
  serialize::Writer w2;
  delta->Encode(next, spec, &w2);
  EXPECT_EQ(residual[5], 0.0f);
  EXPECT_EQ(residual[2], 0.0f);
  EXPECT_EQ(residual[7], 0.6f);  // 0.3 carried + 0.3 fresh, still unsent
}

TEST(DeltaTest, BaseSeqMismatchIsFailedPrecondition) {
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(16, 2.0f);
  std::vector<float> values(16, 3.0f);
  TensorSpec encode_spec;
  encode_spec.base = base;
  encode_spec.base_seq = 4;
  encode_spec.top_k = 4;
  TensorSpec decode_spec = encode_spec;
  decode_spec.base_seq = 5;  // decoder advanced past the encoder's base
  std::vector<float> out;
  const Status st = RoundTrip(*delta, values, encode_spec, decode_spec, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;
}

TEST(DeltaTest, BaseSizeMismatchOnDecodeIsError) {
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(16, 2.0f);
  std::vector<float> values(16, 3.0f);
  TensorSpec encode_spec;
  encode_spec.base = base;
  encode_spec.top_k = 4;
  std::vector<float> wrong_base(8, 2.0f);
  TensorSpec decode_spec;
  decode_spec.base = wrong_base;
  std::vector<float> out;
  EXPECT_FALSE(RoundTrip(*delta, values, encode_spec, decode_spec, &out)
                   .ok());
}

TEST(DeltaTest, CompressesLargeTensorByAtLeastFourTimes) {
  // The ISSUE gate, at unit scale: default top-k (n/8) on a model-sized
  // tensor must beat raw fp32 by >= 4x.
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(1 << 16);
  std::vector<float> values(base.size());
  uint64_t state = 99;
  for (size_t i = 0; i < base.size(); ++i) {
    state = state * 6364136223846793005ull + 1;
    base[i] = static_cast<float>(state >> 40) * 1e-6f;
    values[i] = base[i] + static_cast<float>((state >> 20) & 0xFF) * 1e-3f;
  }
  TensorSpec spec;
  spec.base = base;
  spec.top_k = 0;  // auto: n / 8
  serialize::Writer w;
  delta->Encode(values, spec, &w);
  const size_t raw_bytes = sizeof(float) * values.size();
  EXPECT_LE(w.payload().size() * 4, raw_bytes)
      << "delta blob " << w.payload().size() << "B vs raw " << raw_bytes
      << "B";
}

TEST(DeltaTest, AutoTopKShipsSmallTensorsWholeAndStaysExact) {
  // Below kDeltaAutoFloor the auto mode ships the tensor whole (dense
  // form): sparsifying a few-hundred-parameter model saves almost nothing
  // but measurably slows convergence, so the reconstruction must be
  // bit-exact everywhere, base or no base.
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(512), values(512);
  for (size_t i = 0; i < values.size(); ++i) {
    base[i] = static_cast<float>(i) * 0.25f;
    values[i] = base[i] + 1.0f + static_cast<float>(i % 3);
  }
  TensorSpec spec;
  spec.base = base;
  spec.top_k = 0;  // auto; n < kDeltaAutoFloor, so everything ships
  std::vector<float> out;
  ASSERT_TRUE(RoundTrip(*delta, values, spec, spec, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(DeltaTest, ExactModeShipsChangedCoordinatesOnly) {
  // Exact mode (the moments path): every changed coordinate ships, the
  // unchanged ones reconstruct from the base, and the blob shrinks to
  // nothing as the tensor stabilizes.
  const Codec* delta = FindCodec("delta");
  std::vector<float> base(1000, 2.5f);
  std::vector<float> values = base;
  values[17] = -1.0f;
  values[500] = 0.0f;
  values[999] = 3.75f;
  TensorSpec spec;
  spec.base = base;
  spec.exact = true;
  serialize::Writer w;
  delta->Encode(values, spec, &w);
  EXPECT_LT(w.payload().size(), 64u) << "3 changed of 1000 should be tiny";
  std::vector<float> out;
  ASSERT_TRUE(RoundTrip(*delta, values, spec, spec, &out).ok());
  EXPECT_EQ(out, values);

  // All coordinates changed: the encoder must fall back to the (cheaper,
  // equally exact) dense form rather than pay sparse index overhead.
  std::vector<float> all_changed(base.size());
  for (size_t i = 0; i < all_changed.size(); ++i) {
    all_changed[i] = base[i] + 1.0f + static_cast<float>(i % 5);
  }
  serialize::Writer w2;
  delta->Encode(all_changed, spec, &w2);
  EXPECT_LE(w2.payload().size(),
            sizeof(uint64_t) + 8 + sizeof(float) * all_changed.size());
  ASSERT_TRUE(RoundTrip(*delta, all_changed, spec, spec, &out).ok());
  EXPECT_EQ(out, all_changed);
}

TEST(CorruptionTest, FlippedBytesNeverCrashOnlyErrorStatuses) {
  // Full-stack fuzz: flip every byte of the framed+CRC'd encoding in turn.
  // Either the serialize layer's CRC rejects the buffer or the codec's own
  // bounds checks do — a flip must never crash or return garbage lengths.
  const std::vector<float> tensor = {1.5f, -2.25f, 0.0f, 8.0f, -1e-3f};
  for (const char* name : {"raw", "fp16", "int8", "delta"}) {
    const Codec* codec = FindCodec(name);
    serialize::Writer w;
    codec->Encode(tensor, TensorSpec{}, &w);
    const std::string good = w.Encode();
    for (size_t i = 0; i < good.size(); ++i) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ 0x20);
      Result<serialize::Reader> reader = serialize::Reader::FromBuffer(bad);
      if (!reader.ok()) continue;  // CRC caught it (the common case)
      std::vector<float> out;
      const Status st = codec->Decode(&*reader, TensorSpec{}, &out);
      if (st.ok()) {
        EXPECT_LE(out.size(), tensor.size() + 64) << name << " byte " << i;
      }
    }
  }
}

TEST(CorruptionTest, StructurallyMalformedBlobsAreErrors) {
  const Codec* delta = FindCodec("delta");
  const Codec* fp16 = FindCodec("fp16");
  const auto decode = [](const Codec* codec, const std::string& blob,
                         const TensorSpec& spec) {
    serialize::Writer w;
    w.WriteString(blob);
    const std::string encoded = w.Encode();
    Result<serialize::Reader> reader = serialize::Reader::FromBuffer(encoded);
    EXPECT_TRUE(reader.ok());
    std::vector<float> out;
    return codec->Decode(&*reader, spec, &out);
  };

  // Absurd element count: rejected before any allocation is attempted.
  {
    std::string blob;
    PutVarint(kMaxTensorElems + 1, &blob);
    blob.append(4, '\0');  // "scale"
    EXPECT_FALSE(decode(fp16, blob, TensorSpec{}).ok());
  }
  // Count that doesn't match the bytes that follow.
  {
    std::string blob;
    PutVarint(100, &blob);
    blob.append(4, '\0');
    blob.append(10, '\x7F');  // 5 halves, not 100
    EXPECT_FALSE(decode(fp16, blob, TensorSpec{}).ok());
  }
  std::vector<float> base(4, 1.0f);
  TensorSpec with_base;
  with_base.base = base;
  // Unknown delta section flag.
  {
    std::string blob(1, '\x02');
    EXPECT_FALSE(decode(delta, blob, with_base).ok());
  }
  // Sparse section with nnz > n.
  {
    std::string blob(1, '\x01');
    PutZigzag(0, &blob);   // base_seq
    PutVarint(4, &blob);   // n
    PutVarint(9, &blob);   // nnz > n
    EXPECT_FALSE(decode(delta, blob, with_base).ok());
  }
  // Sparse section whose index gaps walk past n.
  {
    std::string blob(1, '\x01');
    PutZigzag(0, &blob);
    PutVarint(4, &blob);
    PutVarint(2, &blob);
    PutVarint(3, &blob);   // index 3
    PutVarint(5, &blob);   // next index 3 + 1 + 5 = 9 >= n
    blob.append(8, '\0');  // two fp32 values
    EXPECT_FALSE(decode(delta, blob, with_base).ok());
  }
  // Truncated mid-values.
  {
    std::string blob(1, '\x01');
    PutZigzag(0, &blob);
    PutVarint(4, &blob);
    PutVarint(2, &blob);
    PutVarint(0, &blob);
    PutVarint(0, &blob);
    blob.append(3, '\0');  // 3 bytes where 8 belong
    EXPECT_FALSE(decode(delta, blob, with_base).ok());
  }
}

TEST(NegotiateTest, PicksRequestedWhenAdvertisedElseRaw) {
  EXPECT_EQ(Negotiate(CodecId::kDelta, AllCapabilities()), CodecId::kDelta);
  EXPECT_EQ(Negotiate(CodecId::kFp16, AllCapabilities()), CodecId::kFp16);
  // v3 peer: empty mask.
  EXPECT_EQ(Negotiate(CodecId::kDelta, 0), CodecId::kRaw);
  // Peer advertising only raw+int8 cannot serve a delta request.
  const uint32_t mask =
      CapabilityBit(CodecId::kRaw) | CapabilityBit(CodecId::kInt8);
  EXPECT_EQ(Negotiate(CodecId::kDelta, mask), CodecId::kRaw);
  EXPECT_EQ(Negotiate(CodecId::kInt8, mask), CodecId::kInt8);
  EXPECT_EQ(Negotiate(CodecId::kRaw, 0), CodecId::kRaw);
}

TEST(RegistryTest, LooksUpEveryCodecByNameAndId) {
  const std::vector<std::string> names = ListCodecNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "raw");
  EXPECT_EQ(names[3], "delta");
  for (const std::string& name : names) {
    const Codec* codec = FindCodec(name);
    ASSERT_NE(codec, nullptr) << name;
    EXPECT_EQ(codec->name(), name);
    EXPECT_EQ(FindCodec(codec->id()), codec);
  }
  EXPECT_EQ(FindCodec("gzip"), nullptr);
  EXPECT_EQ(FindCodec(static_cast<CodecId>(250)), nullptr);
  EXPECT_TRUE(FindCodec("raw")->lossless());
}

TEST(LinkTest, TwoRoundExchangeKeepsBasesInLockstep) {
  // A server link and a worker link, driven exactly like one connection's
  // train exchanges: download (dense) -> upload weights (delta vs the
  // download) -> moments (delta vs last-acked) — twice.
  const Codec* delta = FindCodec("delta");
  Link server(delta, 4);
  Link worker(delta, 4);
  const int32_t client = 3;

  std::vector<float> model(32, 1.0f);
  std::vector<float> moments = {0.5f, 0.25f, 0.125f, 0.0625f};
  for (int round = 0; round < 2; ++round) {
    // Download.
    serialize::Writer down;
    server.EncodeDownload(client, model, &down);
    const std::string down_bytes = down.Encode();
    Result<serialize::Reader> down_r =
        serialize::Reader::FromBuffer(down_bytes);
    ASSERT_TRUE(down_r.ok());
    std::vector<float> worker_model;
    ASSERT_TRUE(worker.DecodeDownload(client, &*down_r, &worker_model).ok());
    EXPECT_EQ(worker_model, model);  // downloads are dense: bit-exact

    // Local training moves a few coordinates; upload the delta.
    worker_model[0] += 0.75f;
    worker_model[9] -= 0.5f;
    serialize::Writer up;
    worker.EncodeUploadWeights(client, worker_model, &up);
    worker.EncodeMoments(client, moments, &up);
    const std::string up_bytes = up.Encode();
    Result<serialize::Reader> up_r = serialize::Reader::FromBuffer(up_bytes);
    ASSERT_TRUE(up_r.ok());
    std::vector<float> got_weights, got_moments;
    ASSERT_TRUE(
        server.DecodeUploadWeights(client, &*up_r, &got_weights).ok());
    ASSERT_TRUE(server.DecodeMoments(client, &*up_r, &got_moments).ok());
    EXPECT_EQ(got_weights[0], worker_model[0]);
    EXPECT_EQ(got_weights[9], worker_model[9]);
    ASSERT_EQ(got_moments.size(), moments.size());

    // Next round's global model derives from the upload.
    model = got_weights;
    for (float& m : moments) m *= 0.5f;
  }
  // Compression did save bytes somewhere along the way.
  EXPECT_GT(worker.TakeSavedBytes() + server.TakeSavedBytes(), 0);
}

TEST(LinkTest, DesyncedMomentsBaseSurfacesAsError) {
  const Codec* delta = FindCodec("delta");
  Link worker(delta, 2);
  Link server(delta, 2);
  const int32_t client = 0;
  const std::vector<float> moments = {1.0f, 2.0f, 3.0f, 4.0f};

  // Round 1 establishes both bases.
  serialize::Writer w1;
  worker.EncodeMoments(client, moments, &w1);
  const std::string b1 = w1.Encode();
  Result<serialize::Reader> r1 = serialize::Reader::FromBuffer(b1);
  ASSERT_TRUE(r1.ok());
  std::vector<float> out;
  ASSERT_TRUE(server.DecodeMoments(client, &*r1, &out).ok());

  // The worker encodes round 2 (committing its base forward), but the
  // server never sees it — the response is lost. Round 3's blob then
  // carries a seq the server does not have.
  serialize::Writer w2;
  worker.EncodeMoments(client, moments, &w2);
  serialize::Writer w3;
  worker.EncodeMoments(client, moments, &w3);
  const std::string b3 = w3.Encode();
  Result<serialize::Reader> r3 = serialize::Reader::FromBuffer(b3);
  ASSERT_TRUE(r3.ok());
  const Status st = server.DecodeMoments(client, &*r3, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;

  // Reset clears the state: a fresh stream works again.
  server.Reset(client);
  worker.Reset(client);
  serialize::Writer w4;
  worker.EncodeMoments(client, moments, &w4);
  const std::string b4 = w4.Encode();
  Result<serialize::Reader> r4 = serialize::Reader::FromBuffer(b4);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(server.DecodeMoments(client, &*r4, &out).ok());
  EXPECT_EQ(out, moments);
}

TEST(LinkTest, RawLinkIsInactive) {
  Link raw(FindCodec("raw"), 0);
  EXPECT_FALSE(raw.active());
  Link delta(FindCodec("delta"), 16);
  EXPECT_TRUE(delta.active());
  EXPECT_EQ(delta.top_k(), 16);
  EXPECT_STREQ(delta.codec_name(), "delta");
}

}  // namespace
}  // namespace compress
}  // namespace net
}  // namespace fedgta
