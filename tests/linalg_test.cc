#include <cmath>

#include <gtest/gtest.h>

#include "linalg/csr.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"

namespace fedgta {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng& rng) {
  Matrix m(rows, cols);
  m.GaussianInit(rng, 1.0f);
  return m;
}

// Reference O(n^3) GEMM for verification.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b, bool ta, bool tb) {
  const int64_t m = ta ? a.cols() : a.rows();
  const int64_t k = ta ? a.rows() : a.cols();
  const int64_t n = tb ? b.rows() : b.cols();
  Matrix c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a(p, i) : a(i, p);
        const float bv = tb ? b(j, p) : b(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_FLOAT_EQ(m(2, 3), 2.5f);
  m(1, 2) = -1.0f;
  EXPECT_FLOAT_EQ(m(1, 2), -1.0f);
}

TEST(MatrixTest, RowSpanViewsUnderlyingData) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  row[2] = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  const Matrix& cm = m;
  EXPECT_FLOAT_EQ(cm.Row(1)[2], 7.0f);
}

TEST(MatrixTest, FillAndResize) {
  Matrix m(2, 2, 1.0f);
  m.Fill(3.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 3.0f);
  m.ResizeDiscard(4, 5);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_FLOAT_EQ(m(3, 4), 0.0f);
}

TEST(MatrixTest, ArithmeticOperators) {
  Matrix a(2, 2, 1.0f);
  Matrix b(2, 2, 2.0f);
  a += b;
  EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(1, 1), 1.0f);
  a *= 4.0f;
  EXPECT_FLOAT_EQ(a(0, 1), 4.0f);
  a.Axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a(0, 0), 5.0f);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, AllClose) {
  Matrix a(2, 2, 1.0f);
  Matrix b(2, 2, 1.0f);
  EXPECT_TRUE(a.AllClose(b));
  b(1, 1) += 1e-3f;
  EXPECT_FALSE(a.AllClose(b, 1e-4f));
  EXPECT_TRUE(a.AllClose(b, 1e-2f));
  Matrix c(2, 3);
  EXPECT_FALSE(a.AllClose(c));
}

TEST(MatrixTest, GlorotInitWithinBounds) {
  Rng rng(1);
  Matrix m(30, 50);
  m.GlorotInit(rng);
  const float bound = std::sqrt(6.0f / 80.0f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound);
  }
  // Not all zero.
  EXPECT_GT(m.FrobeniusNorm(), 0.1);
}

struct GemmCase {
  bool ta;
  bool tb;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  Rng rng(7);
  const auto [ta, tb] = GetParam();
  const int64_t m = 17, k = 23, n = 9;
  Matrix a = ta ? RandomMatrix(k, m, rng) : RandomMatrix(m, k, rng);
  Matrix b = tb ? RandomMatrix(n, k, rng) : RandomMatrix(k, n, rng);
  Matrix got = MatMul(a, b, ta ? Transpose::kYes : Transpose::kNo,
                      tb ? Transpose::kYes : Transpose::kNo);
  Matrix want = NaiveMatMul(a, b, ta, tb);
  EXPECT_TRUE(got.AllClose(want, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTest,
                         ::testing::Values(GemmCase{false, false},
                                           GemmCase{true, false},
                                           GemmCase{false, true},
                                           GemmCase{true, true}));

TEST(GemmTest, AlphaBetaAccumulation) {
  Rng rng(3);
  Matrix a = RandomMatrix(4, 5, rng);
  Matrix b = RandomMatrix(5, 3, rng);
  Matrix c(4, 3, 1.0f);
  Gemm(a, Transpose::kNo, b, Transpose::kNo, 2.0f, 0.5f, &c);
  Matrix want = NaiveMatMul(a, b, false, false);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(c(i, j), 2.0f * want(i, j) + 0.5f, 1e-4f);
    }
  }
}

TEST(GemmTest, LargeParallelPathMatchesNaive) {
  Rng rng(11);
  Matrix a = RandomMatrix(150, 64, rng);
  Matrix b = RandomMatrix(64, 40, rng);
  Matrix got = MatMul(a, b);
  Matrix want = NaiveMatMul(a, b, false, false);
  EXPECT_TRUE(got.AllClose(want, 1e-2f));
}

TEST(OpsTest, AddRowBroadcast) {
  Matrix m(2, 3, 1.0f);
  Matrix bias(1, 3);
  bias(0, 0) = 1.0f;
  bias(0, 1) = 2.0f;
  bias(0, 2) = 3.0f;
  AddRowBroadcast(bias, &m);
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 4.0f);
}

TEST(OpsTest, ColumnSums) {
  Matrix m(3, 2);
  m(0, 0) = 1.0f;
  m(1, 0) = 2.0f;
  m(2, 0) = 3.0f;
  m(0, 1) = -1.0f;
  Matrix sums = ColumnSums(m);
  EXPECT_FLOAT_EQ(sums(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(sums(0, 1), -1.0f);
}

TEST(OpsTest, RowSoftmaxRowsSumToOne) {
  Rng rng(5);
  Matrix m = RandomMatrix(20, 7, rng);
  m *= 10.0f;  // stress numerical stability
  RowSoftmaxInPlace(&m);
  for (int64_t i = 0; i < m.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m(i, j), 0.0f);
      sum += m(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(OpsTest, RowSoftmaxStableForHugeLogits) {
  Matrix m(1, 3);
  m(0, 0) = 1000.0f;
  m(0, 1) = 999.0f;
  m(0, 2) = -1000.0f;
  RowSoftmaxInPlace(&m);
  EXPECT_TRUE(std::isfinite(m(0, 0)));
  EXPECT_GT(m(0, 0), m(0, 1));
  EXPECT_NEAR(m(0, 2), 0.0f, 1e-6f);
}

TEST(OpsTest, RowArgmax) {
  Matrix m(2, 3);
  m(0, 1) = 5.0f;
  m(1, 2) = 2.0f;
  const std::vector<int> argmax = RowArgmax(m);
  EXPECT_EQ(argmax[0], 1);
  EXPECT_EQ(argmax[1], 2);
}

TEST(OpsTest, ReluForwardAndBackward) {
  Matrix m(1, 4);
  m(0, 0) = -2.0f;
  m(0, 1) = 3.0f;
  m(0, 2) = 0.0f;
  m(0, 3) = -0.5f;
  Matrix pre = m;
  ReluInPlace(&m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 3.0f);
  Matrix grad(1, 4, 1.0f);
  ReluBackwardInPlace(pre, &grad);
  EXPECT_FLOAT_EQ(grad(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(grad(0, 2), 0.0f);  // gradient 0 at exactly 0
}

TEST(OpsTest, DropoutStatisticsAndMask) {
  Rng rng(9);
  Matrix m(100, 100, 1.0f);
  Matrix mask;
  DropoutForward(0.4f, rng, &m, &mask);
  int64_t zeros = 0;
  for (int64_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] == 0.0f) {
      ++zeros;
      EXPECT_FLOAT_EQ(mask.data()[i], 0.0f);
    } else {
      EXPECT_NEAR(m.data()[i], 1.0f / 0.6f, 1e-5f);
    }
  }
  const double rate = static_cast<double>(zeros) / static_cast<double>(m.size());
  EXPECT_NEAR(rate, 0.4, 0.03);

  Matrix grad(100, 100, 2.0f);
  DropoutBackward(mask, &grad);
  for (int64_t i = 0; i < grad.size(); ++i) {
    if (mask.data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(grad.data()[i], 0.0f);
    }
  }
}

TEST(OpsTest, DropoutRateZeroIsIdentity) {
  Rng rng(1);
  Matrix m(4, 4, 2.0f);
  Matrix mask;
  DropoutForward(0.0f, rng, &m, &mask);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(m.data()[i], 2.0f);
    EXPECT_FLOAT_EQ(mask.data()[i], 1.0f);
  }
}

TEST(OpsTest, VectorHelpers) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_NEAR(L2Norm(a), std::sqrt(14.0), 1e-9);
  std::vector<float> y{0.0f, 0.0f, 0.0f};
  Axpy(2.0f, a, y);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
}

TEST(OpsTest, CosineSimilarityProperties) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  const std::vector<float> c{2.0f, 0.0f};
  const std::vector<float> zero{0.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-9);  // scale invariant
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
}

TEST(OpsTest, ComputeMeanStd) {
  const MeanStd ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 2.0);
  EXPECT_DOUBLE_EQ(ComputeMeanStd({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(ComputeMeanStd({3.0}).stddev, 0.0);
}

TEST(CsrTest, FromCooSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromCoo(
      3, 3, {{0, 1, 1.0f}, {0, 1, 2.0f}, {2, 0, 5.0f}, {1, 1, 1.0f}});
  EXPECT_EQ(m.nnz(), 3);
  Matrix dense = m.ToDense();
  EXPECT_FLOAT_EQ(dense(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(dense(2, 0), 5.0f);
  EXPECT_FLOAT_EQ(dense(1, 1), 1.0f);
}

TEST(CsrTest, RowAccessors) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 4, {{0, 3, 2.0f}, {0, 1, 1.0f}});
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  const auto cols = m.RowCols(0);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 1);  // sorted
  EXPECT_EQ(cols[1], 3);
  const auto sums = m.RowSums();
  EXPECT_FLOAT_EQ(sums[0], 3.0f);
  EXPECT_FLOAT_EQ(sums[1], 0.0f);
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(13);
  std::vector<CooEntry> entries;
  for (int i = 0; i < 200; ++i) {
    entries.push_back({static_cast<int32_t>(rng.UniformInt(0, 29)),
                       static_cast<int32_t>(rng.UniformInt(0, 19)),
                       rng.Normal()});
  }
  CsrMatrix sparse = CsrMatrix::FromCoo(30, 20, entries);
  Matrix dense = RandomMatrix(20, 8, rng);
  Matrix got = sparse * dense;
  Matrix want = NaiveMatMul(sparse.ToDense(), dense, false, false);
  EXPECT_TRUE(got.AllClose(want, 1e-3f));
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  Rng rng(17);
  std::vector<CooEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({static_cast<int32_t>(rng.UniformInt(0, 9)),
                       static_cast<int32_t>(rng.UniformInt(0, 14)),
                       rng.Normal()});
  }
  CsrMatrix m = CsrMatrix::FromCoo(10, 15, entries);
  CsrMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 15);
  EXPECT_EQ(t.cols(), 10);
  Matrix md = m.ToDense();
  Matrix td = t.ToDense();
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 15; ++j) {
      EXPECT_FLOAT_EQ(md(i, j), td(j, i));
    }
  }
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromCoo(4, 4, {});
  EXPECT_EQ(m.nnz(), 0);
  Matrix dense(4, 2, 1.0f);
  Matrix out = m * dense;
  EXPECT_EQ(out.rows(), 4);
  EXPECT_DOUBLE_EQ(out.FrobeniusNorm(), 0.0);
}

}  // namespace
}  // namespace fedgta
