// Tests of the server similarity/aggregation plane (DESIGN.md §5h): the
// GEMM-backed Eq. 6 block, the LSH candidate prescreen's exact-set parity,
// the nth_element quantile rewrite, and the deduplicated parallel Eq. 7.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/fedgta_metrics.h"
#include "core/similarity.h"
#include "fed/role.h"
#include "fed/shard_plane.h"
#include "linalg/ops.h"
#include "obs/metrics.h"

namespace fedgta {
namespace {

// Synthetic moment table: `clusters` well-separated directions in d dims,
// each client a small perturbation of its cluster center. Intra-cluster
// cosine stays near 1, inter-cluster near 0 — so Eq. 6 sets are stable
// under any correct similarity evaluation.
std::vector<std::vector<float>> ClusteredMoments(int n, int clusters, int d,
                                                 uint64_t seed,
                                                 float noise = 0.05f) {
  Rng rng(seed);
  std::vector<std::vector<float>> centers(static_cast<size_t>(clusters));
  for (auto& c : centers) {
    c.resize(static_cast<size_t>(d));
    for (float& x : c) x = rng.Normal();
  }
  std::vector<std::vector<float>> moments(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& c = centers[static_cast<size_t>(i % clusters)];
    auto& m = moments[static_cast<size_t>(i)];
    m.resize(static_cast<size_t>(d));
    for (int j = 0; j < d; ++j) {
      m[static_cast<size_t>(j)] =
          c[static_cast<size_t>(j)] + noise * rng.Normal();
    }
  }
  return moments;
}

std::vector<int> AllParticipants(int n) {
  std::vector<int> participants(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) participants[static_cast<size_t>(i)] = i;
  return participants;
}

int64_t CounterValue(const char* name) {
  const Counter* c = GlobalMetrics().FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

TEST(SimilarityModeTest, ParsesAllNamesAndRejectsUnknown) {
  SimilarityMode mode = SimilarityMode::kLsh;
  EXPECT_TRUE(ParseSimilarityMode("exact", &mode));
  EXPECT_EQ(mode, SimilarityMode::kExact);
  EXPECT_TRUE(ParseSimilarityMode("auto", &mode));
  EXPECT_EQ(mode, SimilarityMode::kAuto);
  EXPECT_TRUE(ParseSimilarityMode("lsh", &mode));
  EXPECT_EQ(mode, SimilarityMode::kLsh);
  EXPECT_FALSE(ParseSimilarityMode("cosine", &mode));
  EXPECT_FALSE(ParseSimilarityMode("", &mode));
  EXPECT_EQ(SimilarityModeName(SimilarityMode::kExact), "exact");
  EXPECT_EQ(SimilarityModeName(SimilarityMode::kAuto), "auto");
  EXPECT_EQ(SimilarityModeName(SimilarityMode::kLsh), "lsh");
}

TEST(SimilarityBlockTest, MatchesScalarCosine) {
  const auto moments = ClusteredMoments(17, 4, 23, /*seed=*/7);
  const auto participants = AllParticipants(17);
  const SimilarityBlock block = ComputeSimilarityBlock(moments, participants);
  ASSERT_EQ(block.values.rows(), 17);
  ASSERT_EQ(block.values.cols(), 17);
  for (int a = 0; a < 17; ++a) {
    EXPECT_FLOAT_EQ(block.values(a, a), 1.0f);
    for (int b = 0; b < 17; ++b) {
      if (a == b) continue;
      const double expected = CosineSimilarity(
          moments[static_cast<size_t>(a)], moments[static_cast<size_t>(b)]);
      EXPECT_NEAR(block.values(a, b), expected, 1e-5)
          << "pair (" << a << ", " << b << ")";
    }
  }
}

TEST(SimilarityBlockTest, LegacyMatrixScattersTheBlock) {
  const int n = 12;
  const auto moments = ClusteredMoments(n, 3, 10, /*seed=*/11);
  std::vector<int> participants = {1, 3, 4, 8, 11};
  const SimilarityBlock block = ComputeSimilarityBlock(moments, participants);
  const Matrix legacy = MomentSimilarityMatrix(moments, participants);
  ASSERT_EQ(legacy.rows(), n);
  ASSERT_EQ(legacy.cols(), n);
  std::vector<bool> in(static_cast<size_t>(n), false);
  for (int i : participants) in[static_cast<size_t>(i)] = true;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (in[static_cast<size_t>(i)] && in[static_cast<size_t>(j)]) {
        const auto a = std::find(participants.begin(), participants.end(), i) -
                       participants.begin();
        const auto b = std::find(participants.begin(), participants.end(), j) -
                       participants.begin();
        EXPECT_EQ(legacy(i, j), block.values(a, b));
      } else {
        EXPECT_EQ(legacy(i, j), 0.0f);
      }
    }
  }
}

TEST(SimilarityQuantileTest, NthElementMatchesFullSortReference) {
  const auto moments = ClusteredMoments(23, 5, 14, /*seed=*/3);
  const auto participants = AllParticipants(23);
  const SimilarityBlock block = ComputeSimilarityBlock(moments, participants);
  // Reference: the historical full-sort selection.
  std::vector<float> values;
  for (int a = 0; a < 23; ++a) {
    for (int b = a + 1; b < 23; ++b) values.push_back(block.values(a, b));
  }
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<float> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    EXPECT_EQ(SimilarityQuantile(block, q), sorted[idx]) << "q=" << q;
  }
}

TEST(SimilarityQuantileTest, BlockAndLegacyOverloadsAgree) {
  const auto moments = ClusteredMoments(15, 4, 9, /*seed=*/29);
  const auto participants = AllParticipants(15);
  const SimilarityBlock block = ComputeSimilarityBlock(moments, participants);
  const Matrix legacy = MomentSimilarityMatrix(moments, participants);
  for (double q : {0.0, 0.3, 0.5, 0.95}) {
    EXPECT_EQ(SimilarityQuantile(block, q),
              SimilarityQuantile(legacy, participants, q));
  }
}

TEST(SimilarityQuantileTest, EmptyAndSingleParticipantReturnZero) {
  const auto moments = ClusteredMoments(3, 1, 5, /*seed=*/1);
  for (const std::vector<int>& participants :
       {std::vector<int>{}, std::vector<int>{2}}) {
    const SimilarityBlock block =
        ComputeSimilarityBlock(moments, participants);
    EXPECT_EQ(SimilarityQuantile(block, 0.5), 0.0);
  }
}

// The tentpole parity contract: LSH-pruned set building returns exactly the
// exact oracle's sets — same members, same order — because survivors are
// exact-checked through the same GEMM kernel and the prescreen margin makes
// false negatives vanishingly unlikely (deterministic here: fixed seeds).
TEST(SimilarityParityTest, LshSetsMatchExactOracle) {
  for (uint64_t seed : {5ull, 77ull, 991ull}) {
    for (int n : {8, 60, 300}) {
      for (double epsilon : {0.1, 0.3, 0.8}) {
        const auto moments =
            ClusteredMoments(n, std::max(2, n / 8), 31, seed, 0.15f);
        const auto participants = AllParticipants(n);
        const auto exact =
            BuildAggregationSets(moments, participants, epsilon);
        SimilarityPlaneOptions plane;
        plane.mode = SimilarityMode::kLsh;
        SimilarityStats stats;
        const auto lsh = BuildAggregationSets(moments, participants, epsilon,
                                              plane, &stats);
        EXPECT_EQ(exact, lsh)
            << "n=" << n << " epsilon=" << epsilon << " seed=" << seed;
        EXPECT_EQ(stats.mode_used, SimilarityMode::kLsh);
        EXPECT_EQ(stats.pairs_exact + stats.pairs_pruned,
                  static_cast<int64_t>(n) * (n - 1));
      }
    }
  }
}

TEST(SimilarityParityTest, LshPrunesPairsOnSeparatedClusters) {
  // Orthogonal-ish clusters at a high threshold: most cross-cluster pairs
  // have Hamming distance far above the screen and must be pruned.
  const int n = 120;
  const auto moments = ClusteredMoments(n, 8, 64, /*seed=*/13, 0.02f);
  const auto participants = AllParticipants(n);
  SimilarityPlaneOptions plane;
  plane.mode = SimilarityMode::kLsh;
  SimilarityStats stats;
  const auto lsh =
      BuildAggregationSets(moments, participants, 0.9, plane, &stats);
  EXPECT_EQ(lsh, BuildAggregationSets(moments, participants, 0.9));
  EXPECT_GT(stats.pairs_pruned, 0);
}

TEST(SimilarityParityTest, AutoModeSwitchesOnParticipantCount) {
  const auto moments = ClusteredMoments(20, 4, 16, /*seed=*/21);
  SimilarityPlaneOptions plane;
  plane.mode = SimilarityMode::kAuto;
  plane.auto_lsh_min_participants = 12;

  SimilarityStats small_stats;
  std::vector<int> small(8);
  for (int i = 0; i < 8; ++i) small[static_cast<size_t>(i)] = i;
  (void)BuildAggregationSets(moments, small, 0.3, plane, &small_stats);
  EXPECT_EQ(small_stats.mode_used, SimilarityMode::kExact);

  SimilarityStats large_stats;
  (void)BuildAggregationSets(moments, AllParticipants(20), 0.3, plane,
                             &large_stats);
  EXPECT_EQ(large_stats.mode_used, SimilarityMode::kLsh);
}

// End-to-end Eq. 6+7: with LSH sets equal to exact sets, the personalized
// weights must be bit-identical — same sets, same canonical accumulation.
TEST(FedGtaAggregatePlaneTest, ExactAndLshWeightsBitIdentical) {
  const int n = 64;
  const int dim = 300;
  Rng rng(99);
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::vector<float>> params(static_cast<size_t>(n));
  std::vector<int64_t> train_sizes(static_cast<size_t>(n));
  const auto moments = ClusteredMoments(n, 6, 24, /*seed=*/41, 0.05f);
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].moments = moments[static_cast<size_t>(i)];
    metrics[static_cast<size_t>(i)].confidence = 0.5 + 0.01 * i;
    params[static_cast<size_t>(i)].resize(static_cast<size_t>(dim));
    for (float& x : params[static_cast<size_t>(i)]) x = rng.Normal();
    train_sizes[static_cast<size_t>(i)] = 10 + i;
  }
  const auto participants = AllParticipants(n);

  FedGtaOptions exact_options;
  exact_options.epsilon = 0.4;
  std::vector<std::vector<float>> exact_out(static_cast<size_t>(n));
  std::vector<std::vector<int>> exact_sets;
  FedGtaAggregate(metrics, params, train_sizes, participants, exact_options,
                  &exact_out, &exact_sets);

  FedGtaOptions lsh_options = exact_options;
  lsh_options.similarity.mode = SimilarityMode::kLsh;
  std::vector<std::vector<float>> lsh_out(static_cast<size_t>(n));
  std::vector<std::vector<int>> lsh_sets;
  FedGtaAggregate(metrics, params, train_sizes, participants, lsh_options,
                  &lsh_out, &lsh_sets);

  EXPECT_EQ(exact_sets, lsh_sets);
  EXPECT_EQ(exact_out, lsh_out);  // bitwise: float vectors compared exactly
}

// Dedup correctness: the grouped Eq. 7 must produce exactly what a naive
// per-client canonical-order accumulation produces, and clients sharing a
// set must share bit-identical weights.
TEST(FedGtaAggregatePlaneTest, DedupMatchesNaiveCanonicalReference) {
  const int n = 30;
  const int dim = 50;
  Rng rng(123);
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::vector<float>> params(static_cast<size_t>(n));
  std::vector<int64_t> train_sizes(static_cast<size_t>(n));
  // Three tight clusters -> exactly three distinct aggregation sets, each
  // shared by 10 clients.
  const auto moments = ClusteredMoments(n, 3, 12, /*seed=*/55, 0.01f);
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].moments = moments[static_cast<size_t>(i)];
    metrics[static_cast<size_t>(i)].confidence = 1.0 + 0.1 * (i % 7);
    params[static_cast<size_t>(i)].resize(static_cast<size_t>(dim));
    for (float& x : params[static_cast<size_t>(i)]) x = rng.Normal();
    train_sizes[static_cast<size_t>(i)] = 5 + i;
  }
  const auto participants = AllParticipants(n);

  FedGtaOptions options;
  options.epsilon = 0.8;
  const int64_t unique_before =
      CounterValue("fedgta.aggregation.unique_sets");
  std::vector<std::vector<float>> out(static_cast<size_t>(n));
  std::vector<std::vector<int>> sets;
  FedGtaAggregate(metrics, params, train_sizes, participants, options, &out,
                  &sets);
  EXPECT_EQ(CounterValue("fedgta.aggregation.unique_sets") - unique_before,
            3);

  for (int i : participants) {
    std::vector<int> canonical = sets[static_cast<size_t>(i)];
    std::sort(canonical.begin(), canonical.end());
    double weight_sum = 0.0;
    for (int j : canonical) {
      weight_sum += metrics[static_cast<size_t>(j)].confidence;
    }
    std::vector<float> expected(static_cast<size_t>(dim), 0.0f);
    for (int j : canonical) {
      const float w = static_cast<float>(
          metrics[static_cast<size_t>(j)].confidence / weight_sum);
      Axpy(w, params[static_cast<size_t>(j)], expected);
    }
    EXPECT_EQ(out[static_cast<size_t>(i)], expected) << "client " << i;
  }
  // Clients in the same cluster share the set, hence identical weights.
  EXPECT_EQ(out[0], out[3]);
  EXPECT_EQ(out[1], out[4]);
}

TEST(FedGtaAggregatePlaneTest, ResultsInvariantToThreadCount) {
  const int n = 48;
  const int dim = 80;
  Rng rng(7);
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::vector<float>> params(static_cast<size_t>(n));
  std::vector<int64_t> train_sizes(static_cast<size_t>(n), 10);
  const auto moments = ClusteredMoments(n, 5, 20, /*seed=*/77, 0.1f);
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].moments = moments[static_cast<size_t>(i)];
    metrics[static_cast<size_t>(i)].confidence = 0.3 + 0.02 * i;
    params[static_cast<size_t>(i)].resize(static_cast<size_t>(dim));
    for (float& x : params[static_cast<size_t>(i)]) x = rng.Normal();
  }
  const auto participants = AllParticipants(n);
  FedGtaOptions options;
  options.epsilon = 0.3;

  std::vector<std::vector<std::vector<float>>> runs;
  for (int threads : {1, 4}) {
    SetGlobalThreadPoolSize(threads);
    std::vector<std::vector<float>> out(static_cast<size_t>(n));
    FedGtaAggregate(metrics, params, train_sizes, participants, options,
                    &out);
    runs.push_back(std::move(out));
  }
  SetGlobalThreadPoolSize(1);
  EXPECT_EQ(runs[0], runs[1]);
}

// Satellite regression: adaptive-ε must compute the similarity block once
// (the seed computed it twice — once for the quantile, once for the sets).
TEST(FedGtaAggregatePlaneTest, AdaptiveEpsilonComputesSimilarityOnce) {
  const int n = 16;
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::vector<float>> params(static_cast<size_t>(n));
  std::vector<int64_t> train_sizes(static_cast<size_t>(n), 4);
  const auto moments = ClusteredMoments(n, 4, 10, /*seed=*/31);
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].moments = moments[static_cast<size_t>(i)];
    metrics[static_cast<size_t>(i)].confidence = 1.0;
    params[static_cast<size_t>(i)] = {1.0f, 2.0f};
  }
  FedGtaOptions options;
  options.adaptive_epsilon = true;
  options.adaptive_quantile = 0.5;

  const int64_t calls_before = CounterValue("phase.similarity.calls");
  std::vector<std::vector<float>> out(static_cast<size_t>(n));
  FedGtaAggregate(metrics, params, train_sizes, AllParticipants(n), options,
                  &out);
  EXPECT_EQ(CounterValue("phase.similarity.calls") - calls_before, 1);
}

// --- Shard-boundary parity (DESIGN.md §5k) ---------------------------------
//
// Drives the full cross-shard exchange in-process over K ShardPlanes —
// stage, signature concat, global frame install, candidate generation,
// moment fetch, set admission — and checks the result against the
// single-server oracle. This is the satellite contract: candidate pairs
// that cross shard boundaries must match the oracle's sets exactly, for
// every seed, shard count, and similarity mode.

struct ShardedFixture {
  int n = 0;
  std::vector<int> participants;
  std::vector<std::vector<float>> moments;
  std::vector<std::vector<float>> params;
  std::vector<double> confidences;  // by client id
  std::vector<int64_t> train_sizes;
};

ShardedFixture MakeShardedFixture(int n, int dim, uint64_t seed) {
  ShardedFixture f;
  f.n = n;
  f.moments = ClusteredMoments(n, std::max(2, n / 8), 31, seed, 0.15f);
  f.params.resize(static_cast<size_t>(n));
  f.confidences.resize(static_cast<size_t>(n));
  f.train_sizes.resize(static_cast<size_t>(n));
  Rng rng(seed ^ 0xABCDull);
  for (int i = 0; i < n; ++i) {
    f.params[static_cast<size_t>(i)].resize(static_cast<size_t>(dim));
    for (float& x : f.params[static_cast<size_t>(i)]) x = rng.Normal();
    f.confidences[static_cast<size_t>(i)] = 0.5 + 0.01 * i;
    f.train_sizes[static_cast<size_t>(i)] = 10 + i;
    // Drop some clients so the survivor frame is irregular and shard
    // boundaries fall inside aggregation sets.
    if (i % 7 != 3) f.participants.push_back(i);
  }
  return f;
}

// Stages every shard, runs the signature/candidate/moment exchange the
// root drives over RPC, and returns one ShardPlane per shard, ready for
// BuildSets. `candidates` receives each shard's candidate structure.
std::vector<std::unique_ptr<fed::ShardPlane>> RunShardedExchange(
    const ShardedFixture& f, const fed::Topology& topo,
    const FedGtaOptions& options, bool use_lsh,
    std::vector<fed::ShardPlane::Candidates>* candidates) {
  const int shards = topo.num_aggregators();
  std::vector<std::unique_ptr<fed::ShardPlane>> planes;
  std::vector<uint64_t> global_sigs;
  for (int a = 0; a < shards; ++a) {
    planes.push_back(std::make_unique<fed::ShardPlane>(
        f.n, topo.ClientShard(a), options, f.train_sizes));
    std::vector<fed::ShardUpload> uploads;
    for (int id : f.participants) {
      if (!topo.ClientShard(a).contains(id)) continue;
      fed::ShardUpload up;
      up.client_id = id;
      up.params = f.params[static_cast<size_t>(id)];
      up.moments = f.moments[static_cast<size_t>(id)];
      up.confidence = f.confidences[static_cast<size_t>(id)];
      uploads.push_back(std::move(up));
    }
    planes.back()->StageRound(std::move(uploads));
    if (use_lsh) {
      // Shard-order concat == survivor-major global order (contiguity).
      const std::vector<uint64_t> sigs = planes.back()->Signatures();
      global_sigs.insert(global_sigs.end(), sigs.begin(), sigs.end());
    }
  }
  std::vector<double> frame_confidences;
  for (int id : f.participants) {
    frame_confidences.push_back(f.confidences[static_cast<size_t>(id)]);
  }
  candidates->clear();
  for (int a = 0; a < shards; ++a) {
    planes[static_cast<size_t>(a)]->InstallGlobalFrame(
        f.participants, frame_confidences, global_sigs);
    candidates->push_back(
        planes[static_cast<size_t>(a)]->ComputeCandidates(use_lsh));
  }
  // MomentFetch: serve each shard's want-list from the owning shards.
  for (int a = 0; a < shards; ++a) {
    std::vector<std::vector<int>> by_owner(static_cast<size_t>(shards));
    for (int id : (*candidates)[static_cast<size_t>(a)].remote_wanted) {
      by_owner[static_cast<size_t>(topo.AggregatorOf(id))].push_back(id);
    }
    for (int src = 0; src < shards; ++src) {
      const std::vector<int>& ids = by_owner[static_cast<size_t>(src)];
      if (ids.empty()) continue;
      EXPECT_NE(src, a) << "shard wants a row it already owns";
      planes[static_cast<size_t>(a)]->InstallRemoteRows(
          ids, planes[static_cast<size_t>(src)]->ExportRows(ids));
    }
  }
  return planes;
}

TEST(ShardPlaneParityTest, CrossShardSetsMatchSingleServerOracle) {
  const int n = 48;
  const double epsilon = 0.3;
  for (uint64_t seed : {5ull, 311ull, 991ull}) {
    const ShardedFixture f = MakeShardedFixture(n, /*dim=*/8, seed);
    for (int shards : {2, 3, 4}) {
      for (bool use_lsh : {false, true}) {
        FedGtaOptions options;
        options.epsilon = epsilon;
        options.similarity.mode =
            use_lsh ? SimilarityMode::kLsh : SimilarityMode::kExact;

        SimilarityStats oracle_stats;
        const auto oracle_sets = BuildAggregationSets(
            f.moments, f.participants, epsilon, options.similarity,
            &oracle_stats);

        const fed::Topology topo(n, shards, shards);
        std::vector<fed::ShardPlane::Candidates> candidates;
        const auto planes =
            RunShardedExchange(f, topo, options, use_lsh, &candidates);

        // The sharded prescreen must examine exactly the pairs the
        // single-server sweep examines, with the same prune decisions.
        int64_t pairs_exact = 0;
        int64_t pairs_pruned = 0;
        for (const auto& c : candidates) {
          pairs_exact += c.pairs_exact;
          pairs_pruned += c.pairs_pruned;
        }
        EXPECT_EQ(pairs_exact, oracle_stats.pairs_exact)
            << "shards=" << shards << " lsh=" << use_lsh << " seed=" << seed;
        EXPECT_EQ(pairs_pruned, oracle_stats.pairs_pruned)
            << "shards=" << shards << " lsh=" << use_lsh << " seed=" << seed;

        // Every staged row's admitted set equals the oracle's, across
        // shard boundaries.
        for (int a = 0; a < shards; ++a) {
          const auto sets =
              planes[static_cast<size_t>(a)]->BuildSets(
                  candidates[static_cast<size_t>(a)]);
          const std::vector<int>& staged =
              planes[static_cast<size_t>(a)]->staged();
          ASSERT_EQ(sets.size(), staged.size());
          for (size_t r = 0; r < staged.size(); ++r) {
            EXPECT_EQ(sets[r],
                      oracle_sets[static_cast<size_t>(staged[r])])
                << "client " << staged[r] << " shard " << a
                << " shards=" << shards << " lsh=" << use_lsh
                << " seed=" << seed;
          }
        }
      }
    }
  }
}

// The Eq. 7 half of the contract: chaining AccumulatePartial across the
// shards in ascending shard order must reproduce the single-server
// personalized weights bit for bit, and a set that never crosses a shard
// boundary must short-circuit through AggregateLocalSet to the same bits.
TEST(ShardPlaneParityTest, ChainedPartialsBitIdenticalToSingleServer) {
  const int n = 36;
  const int dim = 40;
  const ShardedFixture f = MakeShardedFixture(n, dim, /*seed=*/77);

  FedGtaOptions options;
  options.epsilon = 0.4;

  // Single-server oracle: the full Eq. 6+7 plane.
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].moments =
        f.moments[static_cast<size_t>(i)];
    metrics[static_cast<size_t>(i)].confidence =
        f.confidences[static_cast<size_t>(i)];
  }
  std::vector<std::vector<float>> oracle_out(static_cast<size_t>(n));
  std::vector<std::vector<int>> oracle_sets;
  FedGtaAggregate(metrics, f.params, f.train_sizes, f.participants, options,
                  &oracle_out, &oracle_sets);

  for (int shards : {2, 3}) {
    const fed::Topology topo(n, shards, shards);
    std::vector<fed::ShardPlane::Candidates> candidates;
    const auto planes =
        RunShardedExchange(f, topo, options, /*use_lsh=*/false, &candidates);

    for (int a = 0; a < shards; ++a) {
      const fed::ShardPlane& plane = *planes[static_cast<size_t>(a)];
      const auto sets = plane.BuildSets(candidates[static_cast<size_t>(a)]);
      for (size_t r = 0; r < plane.staged().size(); ++r) {
        const int id = plane.staged()[r];
        std::vector<int> canonical = sets[r];
        std::sort(canonical.begin(), canonical.end());
        const bool local =
            std::all_of(canonical.begin(), canonical.end(), [&](int m) {
              return plane.shard().contains(m);
            });
        std::vector<float> got;
        if (local) {
          got = plane.AggregateLocalSet(canonical);
        } else {
          const double weight_sum = plane.WeightSum(canonical);
          got.assign(static_cast<size_t>(dim), 0.0f);
          for (int src = 0; src < shards; ++src) {
            planes[static_cast<size_t>(src)]->AccumulatePartial(
                canonical, weight_sum, &got);
          }
        }
        EXPECT_EQ(got, oracle_out[static_cast<size_t>(id)])
            << "client " << id << " shards=" << shards
            << (local ? " (local set)" : " (cross-shard set)");
      }
    }
  }
}

TEST(FedGtaAggregatePlaneTest, PairCountersAccumulateInRegistry) {
  const int n = 10;
  const auto moments = ClusteredMoments(n, 2, 8, /*seed=*/63);
  const int64_t exact_before = CounterValue("fedgta.similarity.pairs_exact");
  (void)BuildAggregationSets(moments, AllParticipants(n), 0.3);
  EXPECT_EQ(CounterValue("fedgta.similarity.pairs_exact") - exact_before,
            static_cast<int64_t>(n) * (n - 1));
}

}  // namespace
}  // namespace fedgta
