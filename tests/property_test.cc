// Property-based sweeps (TEST_P) over randomized configurations: invariants
// that must hold for every seed / size / hyperparameter combination.

#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/fedgta_metrics.h"
#include "core/label_propagation.h"
#include "core/moments.h"
#include "data/federated.h"
#include "data/registry.h"
#include "graph/generator.h"
#include "graph/metrics.h"
#include "graph/normalized_adjacency.h"
#include "linalg/ops.h"
#include "partition/louvain.h"
#include "partition/metis.h"

namespace fedgta {
namespace {

// ---------------------------------------------------------------------------
// Graph generator invariants across seeds and shapes.

struct SbmCase {
  int nodes;
  int classes;
  double degree;
  double homophily;
  uint64_t seed;
};

class SbmPropertyTest : public ::testing::TestWithParam<SbmCase> {};

TEST_P(SbmPropertyTest, StructuralInvariants) {
  const SbmCase& c = GetParam();
  SbmConfig cfg;
  cfg.num_nodes = c.nodes;
  cfg.num_classes = c.classes;
  cfg.avg_degree = c.degree;
  cfg.homophily = c.homophily;
  Rng rng(c.seed);
  const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);

  EXPECT_EQ(lg.graph.num_nodes(), c.nodes);
  EXPECT_EQ(static_cast<int>(lg.labels.size()), c.nodes);
  // Labels in range, all classes present.
  std::set<int> classes;
  for (int y : lg.labels) {
    ASSERT_GE(y, 0);
    ASSERT_LT(y, c.classes);
    classes.insert(y);
  }
  EXPECT_EQ(static_cast<int>(classes.size()), c.classes);
  // Degree sum == 2 * edges; no self loops (Degree counts neighbors).
  int64_t degree_sum = 0;
  for (NodeId v = 0; v < lg.graph.num_nodes(); ++v) {
    degree_sum += lg.graph.Degree(v);
    for (NodeId u : lg.graph.Neighbors(v)) ASSERT_NE(u, v);
  }
  EXPECT_EQ(degree_sum, 2 * lg.graph.num_edges());
  // Regions refine classes.
  for (int v = 0; v < c.nodes; ++v) {
    EXPECT_EQ(lg.regions[static_cast<size_t>(v)] / cfg.regions_per_class,
              lg.labels[static_cast<size_t>(v)]);
  }
}

TEST_P(SbmPropertyTest, NormalizedAdjacencySpectralBound) {
  const SbmCase& c = GetParam();
  SbmConfig cfg;
  cfg.num_nodes = c.nodes;
  cfg.num_classes = c.classes;
  cfg.avg_degree = c.degree;
  cfg.homophily = c.homophily;
  Rng rng(c.seed);
  const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  const CsrMatrix adj = NormalizedAdjacency(lg.graph, 0.5f);
  // ||Ã x|| <= ||x|| for the symmetric normalization with self loops.
  Matrix x(c.nodes, 4);
  Rng xrng(c.seed + 1);
  x.GaussianInit(xrng, 1.0f);
  const Matrix y = adj * x;
  EXPECT_LE(y.FrobeniusNorm(), x.FrobeniusNorm() * (1.0 + 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SbmPropertyTest,
    ::testing::Values(SbmCase{200, 2, 3.0, 0.9, 1}, SbmCase{500, 5, 6.0, 0.8, 2},
                      SbmCase{1000, 10, 12.0, 0.7, 3},
                      SbmCase{300, 3, 4.0, 0.3, 4},
                      SbmCase{800, 7, 8.0, 0.95, 5},
                      SbmCase{150, 6, 5.0, 0.5, 6}));

// ---------------------------------------------------------------------------
// Partitioners: every node assigned exactly once, all parts non-empty, for
// many (seed, k) combinations.

struct PartitionCase {
  int k;
  uint64_t seed;
};

class PartitionPropertyTest : public ::testing::TestWithParam<PartitionCase> {
 protected:
  static const LabeledGraph& SharedGraph() {
    static const LabeledGraph* lg = [] {
      SbmConfig cfg;
      cfg.num_nodes = 1200;
      cfg.num_classes = 6;
      cfg.avg_degree = 8.0;
      Rng rng(99);
      return new LabeledGraph(GeneratePlantedPartition(cfg, rng));
    }();
    return *lg;
  }
};

TEST_P(PartitionPropertyTest, MetisIsCompletePartition) {
  const auto& [k, seed] = GetParam();
  Rng rng(seed);
  const std::vector<int> parts = MetisPartition(SharedGraph().graph, k, rng);
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  for (int p : parts) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, k);
    ++counts[static_cast<size_t>(p)];
  }
  for (int64_t cnt : counts) EXPECT_GT(cnt, 0);
}

TEST_P(PartitionPropertyTest, FederatedSplitCoversEveryNodeOnce) {
  const auto& [k, seed] = GetParam();
  for (const SplitMethod method :
       {SplitMethod::kLouvain, SplitMethod::kMetis}) {
    SplitConfig split;
    split.method = method;
    split.num_clients = k;
    Rng rng(seed);
    const auto clients = FederatedSplit(SharedGraph().graph, split, rng);
    ASSERT_EQ(static_cast<int>(clients.size()), k);
    std::vector<int> seen(1200, 0);
    for (const auto& nodes : clients) {
      EXPECT_FALSE(nodes.empty());
      for (NodeId v : nodes) ++seen[static_cast<size_t>(v)];
    }
    EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 1200);
    EXPECT_EQ(*std::min_element(seen.begin(), seen.end()), 1);
    EXPECT_EQ(*std::max_element(seen.begin(), seen.end()), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ks, PartitionPropertyTest,
    ::testing::Values(PartitionCase{2, 1}, PartitionCase{3, 2},
                      PartitionCase{5, 3}, PartitionCase{8, 4},
                      PartitionCase{10, 5}, PartitionCase{16, 6},
                      PartitionCase{25, 7}));

// ---------------------------------------------------------------------------
// Label propagation: rows of Ŷ^k remain bounded and mass-controlled for any
// alpha/k, since the operator is substochastic.

struct LpCase {
  float alpha;
  int k;
};

class LabelPropPropertyTest : public ::testing::TestWithParam<LpCase> {};

TEST_P(LabelPropPropertyTest, OutputsBoundedAndFinite) {
  const auto& [alpha, k] = GetParam();
  SbmConfig cfg;
  cfg.num_nodes = 250;
  cfg.num_classes = 5;
  cfg.avg_degree = 7.0;
  Rng rng(11);
  const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  const CsrMatrix op = LabelPropagationOperator(lg.graph);
  Matrix y0(250, 5);
  y0.GaussianInit(rng, 1.0f);
  RowSoftmaxInPlace(&y0);
  const auto hops = NonParamLabelPropagation(op, y0, alpha, k);
  ASSERT_EQ(hops.size(), static_cast<size_t>(k));
  for (const Matrix& hop : hops) {
    for (int64_t i = 0; i < hop.size(); ++i) {
      ASSERT_TRUE(std::isfinite(hop.data()[i]));
      ASSERT_GE(hop.data()[i], 0.0f);
      ASSERT_LE(hop.data()[i], 1.0f + 1e-5f);
    }
  }
}

TEST_P(LabelPropPropertyTest, MomentsFiniteForAllOrders) {
  const auto& [alpha, k] = GetParam();
  SbmConfig cfg;
  cfg.num_nodes = 250;
  cfg.num_classes = 5;
  Rng rng(12);
  const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  const CsrMatrix op = LabelPropagationOperator(lg.graph);
  Matrix y0(250, 5, 0.2f);
  const auto hops = NonParamLabelPropagation(op, y0, alpha, k);
  for (int order : {1, 2, 3, 5, 8}) {
    const auto moments = MixedMoments(hops, order);
    EXPECT_EQ(moments.size(), static_cast<size_t>(k) * order * 5);
    for (float v : moments) ASSERT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaK, LabelPropPropertyTest,
                         ::testing::Values(LpCase{0.1f, 2}, LpCase{0.5f, 5},
                                           LpCase{0.9f, 3}, LpCase{0.3f, 8},
                                           LpCase{0.5f, 1}));

// ---------------------------------------------------------------------------
// FedGTA aggregation invariants under random uploads.

class AggregationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregationPropertyTest, ConvexityAndSetMembership) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 8));
  const int dim = 4;
  const int moment_dim = 6;
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::vector<float>> params(static_cast<size_t>(n));
  std::vector<int64_t> sizes(static_cast<size_t>(n));
  std::vector<int> participants;
  float lo = 1e9f, hi = -1e9f;
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].confidence = rng.Uniform(0.1f, 5.0f);
    metrics[static_cast<size_t>(i)].moments.resize(moment_dim);
    for (float& v : metrics[static_cast<size_t>(i)].moments) v = rng.Normal();
    params[static_cast<size_t>(i)].resize(dim);
    for (float& v : params[static_cast<size_t>(i)]) {
      v = rng.Normal();
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    sizes[static_cast<size_t>(i)] = rng.UniformInt(1, 100);
    participants.push_back(i);
  }
  FedGtaOptions options;
  options.epsilon = rng.Uniform(-0.5f, 0.9f);
  std::vector<std::vector<float>> personalized(static_cast<size_t>(n));
  std::vector<std::vector<int>> sets;
  FedGtaAggregate(metrics, params, sizes, participants, options,
                  &personalized, &sets);
  for (int i = 0; i < n; ++i) {
    // Sets contain self first, only participants, no duplicates.
    const auto& set = sets[static_cast<size_t>(i)];
    ASSERT_FALSE(set.empty());
    EXPECT_EQ(set.front(), i);
    std::set<int> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size());
    // Convex combination: every coordinate within the participants' range.
    for (float v : personalized[static_cast<size_t>(i)]) {
      EXPECT_GE(v, lo - 1e-4f);
      EXPECT_LE(v, hi + 1e-4f);
    }
  }
}

TEST_P(AggregationPropertyTest, IdenticalUploadsAreFixedPoint) {
  Rng rng(GetParam() ^ 0xabc);
  const int n = 3 + static_cast<int>(rng.UniformInt(0, 5));
  std::vector<float> shared(8);
  for (float& v : shared) v = rng.Normal();
  std::vector<ClientMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::vector<float>> params(static_cast<size_t>(n), shared);
  std::vector<int64_t> sizes(static_cast<size_t>(n), 10);
  std::vector<int> participants;
  for (int i = 0; i < n; ++i) {
    metrics[static_cast<size_t>(i)].confidence = rng.Uniform(0.5f, 2.0f);
    metrics[static_cast<size_t>(i)].moments = {1.0f, 2.0f, 3.0f};
    participants.push_back(i);
  }
  FedGtaOptions options;
  std::vector<std::vector<float>> personalized(static_cast<size_t>(n));
  FedGtaAggregate(metrics, params, sizes, participants, options,
                  &personalized);
  for (int i = 0; i < n; ++i) {
    for (size_t j = 0; j < shared.size(); ++j) {
      EXPECT_NEAR(personalized[static_cast<size_t>(i)][j], shared[j], 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Dataset registry: every registered surrogate materializes consistently.

class DatasetPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetPropertyTest, MaterializesConsistently) {
  const std::string& name = GetParam();
  if (name == "ogbn-products" || name == "ogbn-papers100m") {
    GTEST_SKIP() << "large surrogate covered by benches";
  }
  const Dataset ds = MakeDatasetByName(name, 123);
  const Result<DatasetSpec> spec = GetDatasetSpec(name);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(ds.graph.num_nodes(), spec->sbm.num_nodes);
  EXPECT_EQ(ds.num_classes, spec->sbm.num_classes);
  EXPECT_EQ(ds.features.cols(), spec->feature.dim);
  EXPECT_EQ(ds.inductive, spec->inductive);
  // Splits are disjoint and within range.
  std::set<int32_t> seen;
  for (const auto* idx : {&ds.train_idx, &ds.val_idx, &ds.test_idx}) {
    for (int32_t i : *idx) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, ds.graph.num_nodes());
      EXPECT_TRUE(seen.insert(i).second) << "index in two splits: " << i;
    }
  }
  // Features finite.
  for (int64_t i = 0; i < ds.features.size(); ++i) {
    ASSERT_TRUE(std::isfinite(ds.features.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, DatasetPropertyTest,
                         ::testing::ValuesIn(ListDatasets()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace fedgta
