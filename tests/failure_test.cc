// Failure-injection tests: invalid inputs must be rejected loudly (CHECK
// abort, captured via gtest death tests) or via error Status, never
// silently accepted.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "core/label_propagation.h"
#include "core/moments.h"
#include "data/registry.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "linalg/csr.h"
#include "linalg/ops.h"
#include "nn/loss.h"
#include "nn/parameters.h"
#include "partition/metis.h"

namespace fedgta {
namespace {

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, GraphRejectsOutOfRangeEndpoints) {
  EXPECT_DEATH(Graph::FromEdges(3, {{0, 3}}), "edge endpoint");
  EXPECT_DEATH(Graph::FromEdges(3, {{-1, 0}}), "edge endpoint");
}

TEST(FailureDeathTest, CsrRejectsOutOfRangeCoo) {
  EXPECT_DEATH(CsrMatrix::FromCoo(2, 2, {{2, 0, 1.0f}}), "COO row");
  EXPECT_DEATH(CsrMatrix::FromCoo(2, 2, {{0, 5, 1.0f}}), "COO col");
}

TEST(FailureDeathTest, CsrMultiplyShapeMismatch) {
  const CsrMatrix m = CsrMatrix::FromCoo(2, 3, {{0, 0, 1.0f}});
  Matrix wrong(5, 2, 1.0f);
  Matrix out;
  EXPECT_DEATH(m.Multiply(wrong, &out), "FEDGTA_CHECK");
}

TEST(FailureDeathTest, GemmInnerDimensionMismatch) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_DEATH(Gemm(a, Transpose::kNo, b, Transpose::kNo, 1.0f, 0.0f, &c),
               "inner dimensions");
}

TEST(FailureDeathTest, SubgraphRejectsDuplicatesAndBadIds) {
  const Graph g = Graph::FromEdges(4, {{0, 1}});
  EXPECT_DEATH(InduceSubgraph(g, {0, 0}), "duplicate node id");
  EXPECT_DEATH(InduceSubgraph(g, {7}), "node id");
}

TEST(FailureDeathTest, MetisRejectsTooManyParts) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  Rng rng(1);
  EXPECT_DEATH(MetisPartition(g, 10, rng), "more parts than nodes");
}

TEST(FailureDeathTest, CrossEntropyRejectsBadLabels) {
  Matrix logits(2, 3);
  Matrix dlogits;
  EXPECT_DEATH(
      SoftmaxCrossEntropy(logits, {0, 7}, {0, 1}, &dlogits), "label");
  EXPECT_DEATH(SoftmaxCrossEntropy(logits, {0, 1}, {}, &dlogits),
               "FEDGTA_CHECK");
}

TEST(FailureDeathTest, UnflattenSizeMismatch) {
  Matrix w(2, 2), g(2, 2);
  std::vector<ParamRef> params{{&w, &g}};
  std::vector<float> wrong(3, 0.0f);
  EXPECT_DEATH(UnflattenParams(wrong, params), "FEDGTA_CHECK");
}

TEST(FailureDeathTest, LabelPropagationValidatesArguments) {
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  const CsrMatrix op = LabelPropagationOperator(g);
  Matrix y0(3, 2, 0.5f);
  EXPECT_DEATH(NonParamLabelPropagation(op, y0, 0.5f, 0), "k");
  EXPECT_DEATH(NonParamLabelPropagation(op, y0, 1.5f, 2), "alpha");
  Matrix mismatched(5, 2, 0.5f);
  EXPECT_DEATH(NonParamLabelPropagation(op, mismatched, 0.5f, 2),
               "FEDGTA_CHECK");
}

TEST(FailureDeathTest, MomentsRejectEmptyAndBadOrder) {
  EXPECT_DEATH(MixedMoments({}, 2), "FEDGTA_CHECK");
  std::vector<Matrix> hops{Matrix(2, 2, 0.5f)};
  EXPECT_DEATH(MixedMoments(hops, 0), "moment_order");
}

TEST(FailureStatusTest, UnknownNamesReturnErrors) {
  EXPECT_EQ(GetDatasetSpec("no-such-dataset").status().code(),
            StatusCode::kNotFound);
}

TEST(FailureDeathTest, ResultValueOnErrorAborts) {
  Result<int> r(InternalError("boom"));
  EXPECT_DEATH((void)r.value(), "Result::value");
}

// Checkpoint corruption must always surface as an error Status — a damaged
// or foreign file must never abort the process or load partially.
class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "fedgta_corruption_test.ckpt")
                .string();
    serialize::Writer writer;
    writer.WriteString("state");
    writer.WriteI64(1234);
    ASSERT_TRUE(writer.WriteToFile(path_).ok());
    std::ifstream in(path_, std::ios::binary);
    raw_.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    ASSERT_GT(raw_.size(), 20u);  // header is 20 bytes
  }

  void TearDown() override { std::filesystem::remove(path_); }

  void WriteRaw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::string raw_;
};

TEST_F(CheckpointCorruptionTest, TruncatedHeaderIsOutOfRange) {
  WriteRaw(raw_.substr(0, 10));
  EXPECT_EQ(serialize::Reader::FromFile(path_).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(CheckpointCorruptionTest, TruncatedPayloadIsOutOfRange) {
  WriteRaw(raw_.substr(0, raw_.size() - 4));
  EXPECT_EQ(serialize::Reader::FromFile(path_).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(CheckpointCorruptionTest, BadMagicIsInvalidArgument) {
  std::string bad = raw_;
  bad[0] = 'X';  // clobber the first magic byte
  WriteRaw(bad);
  const Status status = serialize::Reader::FromFile(path_).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, WrongVersionIsInvalidArgument) {
  std::string bad = raw_;
  const uint32_t future = serialize::kVersion + 1;
  std::memcpy(bad.data() + 4, &future, sizeof(future));
  WriteRaw(bad);
  const Status status = serialize::Reader::FromFile(path_).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, FlippedPayloadByteFailsCrc) {
  std::string bad = raw_;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x5a);
  WriteRaw(bad);
  const Status status = serialize::Reader::FromFile(path_).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("CRC"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, TrailingGarbageIsOutOfRange) {
  WriteRaw(raw_ + "garbage");
  EXPECT_EQ(serialize::Reader::FromFile(path_).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace fedgta
