// Backend-equivalence suite: every registered kernel backend must agree
// with the "reference" oracle within floating-point reassociation
// tolerance (1e-4 relative), across all four GEMM transpose combinations,
// alpha/beta variants, odd shapes, SIMD-width straddlers, and the SpMM
// corner cases (empty rows, dense rows, duplicate-merged COO). Also pins
// the within-backend determinism contract: a backend's output must be
// bit-identical for any row chunking.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/backend.h"
#include "linalg/csr.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"

namespace fedgta {
namespace {

constexpr float kRelTol = 1e-4f;
constexpr float kAbsTol = 1e-5f;

std::vector<std::string> NonReferenceBackends() {
  std::vector<std::string> names;
  for (const std::string& name : linalg::ListBackends()) {
    if (name != "reference") names.push_back(name);
  }
  return names;
}

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng& rng) {
  Matrix m(rows, cols);
  m.GaussianInit(rng, 1.0f);
  return m;
}

/// `abs_scale` widens the absolute floor for long reductions: a k-term sum
/// of O(1) values can cancel to a tiny result while its roundoff scales
/// with sqrt(k), so GEMM checks pass sqrt(k) here.
void ExpectAllCloseRel(const Matrix& got, const Matrix& want,
                       const std::string& context, float abs_scale = 1.0f) {
  ASSERT_EQ(got.rows(), want.rows()) << context;
  ASSERT_EQ(got.cols(), want.cols()) << context;
  for (int64_t r = 0; r < got.rows(); ++r) {
    for (int64_t c = 0; c < got.cols(); ++c) {
      const float w = want(r, c);
      const float g = got(r, c);
      ASSERT_LE(std::abs(g - w), kAbsTol * abs_scale + kRelTol * std::abs(w))
          << context << " at (" << r << ", " << c << "): got " << g
          << " want " << w;
    }
  }
}

/// Runs C = alpha*A_eff*B_eff + beta*C through the public dispatch under
/// `backend` and compares against the same call under "reference".
void CheckGemm(const std::string& backend, int64_t m, int64_t n, int64_t k,
               Transpose ta, Transpose tb, float alpha, float beta,
               Rng& rng) {
  const Matrix a = ta == Transpose::kNo ? RandomMatrix(m, k, rng)
                                        : RandomMatrix(k, m, rng);
  const Matrix b = tb == Transpose::kNo ? RandomMatrix(k, n, rng)
                                        : RandomMatrix(n, k, rng);
  const Matrix c0 = RandomMatrix(m, n, rng);

  Matrix want = c0;
  {
    linalg::ScopedBackend scope("reference");
    Gemm(a, ta, b, tb, alpha, beta, &want);
  }
  Matrix got = c0;
  {
    linalg::ScopedBackend scope(backend);
    Gemm(a, ta, b, tb, alpha, beta, &got);
  }
  const std::string context =
      backend + " gemm m=" + std::to_string(m) + " n=" + std::to_string(n) +
      " k=" + std::to_string(k) +
      " ta=" + std::to_string(ta == Transpose::kYes) +
      " tb=" + std::to_string(tb == Transpose::kYes) +
      " alpha=" + std::to_string(alpha) + " beta=" + std::to_string(beta);
  ExpectAllCloseRel(got, want, context,
                    1.0f + std::sqrt(static_cast<float>(k)));
}

TEST(BackendEquivalence, GemmOddShapesAllTransposesAlphaBeta) {
  const struct {
    float alpha;
    float beta;
  } scalings[] = {{1.0f, 0.0f}, {0.5f, 1.0f}, {2.0f, -0.5f}};
  for (const std::string& backend : NonReferenceBackends()) {
    Rng rng(1234);
    for (int64_t m = 1; m <= 9; ++m) {
      for (int64_t n = 1; n <= 9; ++n) {
        for (int64_t k = 1; k <= 9; ++k) {
          CheckGemm(backend, m, n, k, Transpose::kNo, Transpose::kNo, 1.0f,
                    0.0f, rng);
        }
      }
    }
    // All transpose combos and alpha/beta variants over a shape set that
    // straddles the microkernel widths (MR/NR = 4/8/8x8) and the odd range
    // the issue calls out: 1..17 plus 31/32/33.
    const int64_t shapes[] = {1, 2, 3, 5, 7, 8, 9, 12, 13, 15, 16, 17,
                              31, 32, 33};
    for (int64_t s : shapes) {
      for (const auto ta : {Transpose::kNo, Transpose::kYes}) {
        for (const auto tb : {Transpose::kNo, Transpose::kYes}) {
          for (const auto& sc : scalings) {
            CheckGemm(backend, s, 33 - (s % 3), s + 2, ta, tb, sc.alpha,
                      sc.beta, rng);
            CheckGemm(backend, 17, s, 31, ta, tb, sc.alpha, sc.beta, rng);
          }
        }
      }
    }
  }
}

TEST(BackendEquivalence, GemmTiledPanelsAndParallelPath) {
  // Shapes crossing the cache-blocking constants (KC=256, MC=96, NC=512)
  // and big enough to take the ParallelForChunked path.
  const struct {
    int64_t m, n, k;
  } shapes[] = {{37, 19, 300}, {100, 64, 257}, {70, 520, 33}, {130, 40, 512}};
  for (const std::string& backend : NonReferenceBackends()) {
    Rng rng(99);
    for (const auto& s : shapes) {
      for (const auto ta : {Transpose::kNo, Transpose::kYes}) {
        for (const auto tb : {Transpose::kNo, Transpose::kYes}) {
          CheckGemm(backend, s.m, s.n, s.k, ta, tb, 1.0f, 0.0f, rng);
        }
      }
      CheckGemm(backend, s.m, s.n, s.k, Transpose::kNo, Transpose::kNo,
                0.5f, 1.0f, rng);
    }
  }
}

TEST(BackendEquivalence, GemmChunkInvarianceWithinBackend) {
  // The determinism contract: for a fixed backend, GemmRows output must be
  // bit-identical for any row chunking (this is what keeps multi-threaded
  // runs reproducible per backend).
  Rng rng(7);
  const int64_t m = 45, n = 37, k = 301;
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(k, n, rng);
  for (const std::string& name : linalg::ListBackends()) {
    const linalg::Backend* backend = linalg::FindBackend(name);
    ASSERT_NE(backend, nullptr) << name;
    linalg::GemmCall call;
    call.a = {a.data(), k, 1};
    call.b = {b.data(), n, 1};
    call.m = m;
    call.n = n;
    call.k = k;
    call.alpha = 1.0f;
    call.beta = 0.0f;
    Matrix whole(m, n);
    call.c = whole.data();
    backend->GemmRows(call, 0, m);
    Matrix chunked(m, n);
    call.c = chunked.data();
    // Deliberately ragged chunk boundaries.
    const int64_t cuts[] = {0, 1, 7, 8, 20, 33, m};
    for (size_t i = 0; i + 1 < std::size(cuts); ++i) {
      backend->GemmRows(call, cuts[i], cuts[i + 1]);
    }
    EXPECT_EQ(std::memcmp(whole.data(), chunked.data(),
                          sizeof(float) * static_cast<size_t>(m * n)),
              0)
        << name << " output depends on chunk boundaries";
  }
}

CsrMatrix MakeTestCsr(int64_t rows, int64_t cols, Rng& rng) {
  std::vector<CooEntry> entries;
  for (int32_t r = 0; r < rows; ++r) {
    if (r % 5 == 1) continue;  // empty rows
    if (r % 7 == 0) {
      // Dense row.
      for (int32_t c = 0; c < cols; ++c) {
        entries.push_back({r, c, rng.Uniform(-1.0f, 1.0f)});
      }
      continue;
    }
    const int64_t nnz = rng.UniformInt(1, 4);
    for (int64_t i = 0; i < nnz; ++i) {
      const int32_t c = static_cast<int32_t>(rng.UniformInt(0, cols - 1));
      entries.push_back({r, c, rng.Uniform(-1.0f, 1.0f)});
      if (i == 0) {
        // Duplicate entry — FromCoo must merge, all backends must agree.
        entries.push_back({r, c, rng.Uniform(-1.0f, 1.0f)});
      }
    }
  }
  return CsrMatrix::FromCoo(rows, cols, std::move(entries));
}

TEST(BackendEquivalence, SpmmCornerCases) {
  Rng rng(4321);
  const int64_t rows = 64, inner = 48;
  const CsrMatrix csr = MakeTestCsr(rows, inner, rng);
  for (const int64_t f : {1, 7, 8, 9, 16, 33}) {
    const Matrix dense = RandomMatrix(inner, f, rng);
    Matrix want;
    {
      linalg::ScopedBackend scope("reference");
      csr.Multiply(dense, &want);
    }
    for (const std::string& backend : NonReferenceBackends()) {
      Matrix got;
      {
        linalg::ScopedBackend scope(backend);
        csr.Multiply(dense, &got);
      }
      ExpectAllCloseRel(got, want, backend + " spmm f=" + std::to_string(f));
    }
  }
}

TEST(BackendEquivalence, SpmmOverwritesStaleScratch) {
  // Kernels must overwrite their rows: feeding a scratch matrix full of
  // garbage must give the same result as a fresh one (this is what lets
  // the dispatch layer use EnsureShape instead of a zero-fill).
  Rng rng(777);
  const CsrMatrix csr = MakeTestCsr(32, 24, rng);
  const Matrix dense = RandomMatrix(24, 9, rng);
  for (const std::string& name : linalg::ListBackends()) {
    linalg::ScopedBackend scope(name);
    Matrix fresh;
    csr.Multiply(dense, &fresh);
    Matrix stale(32, 9, 1e30f);
    csr.Multiply(dense, &stale);
    EXPECT_TRUE(stale.AllClose(fresh, 0.0f)) << name;
  }
}

TEST(BackendEquivalence, VectorOpsMatchReference) {
  Rng rng(55);
  const Matrix x = RandomMatrix(1, 1003, rng);
  const Matrix y0 = RandomMatrix(1, 1003, rng);
  const linalg::Backend* reference = linalg::FindBackend("reference");
  ASSERT_NE(reference, nullptr);
  const double want_dot = reference->Dot(x.Row(0), y0.Row(0));
  Matrix want_axpy = y0;
  reference->Axpy(0.75f, x.Row(0), want_axpy.Row(0));
  const Matrix m = RandomMatrix(57, 33, rng);
  std::vector<float> want_sums(33);
  reference->ColumnSums(m.data(), 57, 33, want_sums.data());
  Matrix want_softmax = m;
  reference->RowSoftmaxRows(want_softmax.data(), 33, 0, 57);

  for (const std::string& name : NonReferenceBackends()) {
    const linalg::Backend* backend = linalg::FindBackend(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_NEAR(backend->Dot(x.Row(0), y0.Row(0)), want_dot,
                1e-4 * std::abs(want_dot) + 1e-6)
        << name;
    Matrix got_axpy = y0;
    backend->Axpy(0.75f, x.Row(0), got_axpy.Row(0));
    ExpectAllCloseRel(got_axpy, want_axpy, name + " axpy");
    std::vector<float> got_sums(33);
    backend->ColumnSums(m.data(), 57, 33, got_sums.data());
    for (size_t i = 0; i < got_sums.size(); ++i) {
      EXPECT_LE(std::abs(got_sums[i] - want_sums[i]),
                kAbsTol + kRelTol * std::abs(want_sums[i]))
          << name << " column " << i;
    }
    Matrix got_softmax = m;
    backend->RowSoftmaxRows(got_softmax.data(), 33, 0, 57);
    ExpectAllCloseRel(got_softmax, want_softmax, name + " softmax");
  }
}

TEST(BackendRegistry, ListFindAndSelection) {
  const std::vector<std::string> names = linalg::ListBackends();
  EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "blocked"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "simd"), names.end());
  EXPECT_EQ(linalg::FindBackend("no-such-backend"), nullptr);
  EXPECT_FALSE(linalg::SetActiveBackend("no-such-backend").ok());
  const std::string before(linalg::ActiveBackendName());
  {
    linalg::ScopedBackend scope("blocked");
    EXPECT_EQ(linalg::ActiveBackendName(), "blocked");
  }
  EXPECT_EQ(linalg::ActiveBackendName(), before);
}

TEST(BackendRegistry, MatrixEnsureShapeReusesStorage) {
  Matrix m(3, 4, 7.0f);
  const float* ptr = m.data();
  m.EnsureShape(4, 3);  // same element count: storage reused, no zeroing
  EXPECT_EQ(m.data(), ptr);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 3);
  m.ResizeDiscard(2, 2);
  EXPECT_FLOAT_EQ(m(1, 1), 0.0f);
}

}  // namespace
}  // namespace fedgta
