// Hierarchical-vs-in-process determinism (DESIGN.md §5k): a FedGTA run
// driven through real regional aggregator processes — root + fedgta_aggregator
// children + fedgta_worker grandchildren over loopback TCP — must be
// bit-identical to the in-process Simulation of the same configuration.
// Also covers the relay plane (fedavg), the shardable-capability and async
// rejections, and the root status endpoint's mid-tier table.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fed/hierarchy.h"
#include "fed/remote_config.h"
#include "fed/role.h"
#include "fed/simulation.h"
#include "net/socket.h"

namespace fedgta {
namespace {

// The root coordinator runs in a thread of this process while the worker
// tier is being launched, so every spawn prebuilds argv in the parent and
// the child touches nothing but execv (no allocation between fork and
// exec — the child may have inherited a held malloc lock).
pid_t SpawnProcess(const char* binary, std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(binary, argv.data());
    _exit(127);  // exec failed
  }
  return pid;
}

pid_t SpawnAggregator(int root_port, const std::string& port_file,
                      bool status_port) {
  std::vector<std::string> args = {FEDGTA_AGGREGATOR_BINARY,
                                   "--host=127.0.0.1",
                                   "--port=" + std::to_string(root_port),
                                   "--listen_port=0",
                                   "--port_file=" + port_file,
                                   "--connect_attempts=60",
                                   "--deadline_ms=60000",
                                   "--num_threads=2"};
  if (status_port) args.push_back("--status_port=0");
  return SpawnProcess(FEDGTA_AGGREGATOR_BINARY, std::move(args));
}

pid_t SpawnWorker(int agg_port) {
  return SpawnProcess(FEDGTA_WORKER_BINARY,
                      {FEDGTA_WORKER_BINARY, "--host=127.0.0.1",
                       "--port=" + std::to_string(agg_port),
                       "--connect_attempts=60", "--deadline_ms=60000",
                       "--num_threads=2"});
}

// "<worker_port>\n<agg_index>\n", published atomically once the
// aggregator's listener is bound.
bool ReadPortFile(const std::string& path, int* port, int* agg_index) {
  std::ifstream in(path);
  if (!in.good()) return false;
  int p = -1;
  int idx = -1;
  in >> p >> idx;
  if (p <= 0 || idx < 0) return false;
  *port = p;
  *agg_index = idx;
  return true;
}

struct HierarchicalOutcome {
  Result<SimulationResult> result = InternalError("not run");
  std::vector<int> exit_codes;  // aggregators first, then workers
  int root_status_port = -1;
  std::string final_status;  // root "status" reply after Run(), if serving
};

std::string QueryStatus(int port, const std::string& command) {
  Result<net::Socket> conn = net::Connect("127.0.0.1", port, 2000);
  EXPECT_TRUE(conn.ok()) << conn.status();
  if (!conn.ok()) return "";
  const std::string line = command + "\n";
  EXPECT_TRUE(conn->WriteFull(line.data(), line.size()).ok());
  std::string reply;
  char byte = 0;
  while (conn->ReadFull(&byte, 1).ok()) reply.push_back(byte);
  return reply;
}

/// Listens, forks the aggregator tier, runs the root in a thread, launches
/// each shard's workers once its aggregator publishes a port file, and
/// reaps the whole process tree.
HierarchicalOutcome RunHierarchical(const RemoteFedConfig& config,
                                    bool agg_status_ports = false) {
  HierarchicalOutcome out;
  fed::RootCoordinator root(config);
  if (const Status status = root.Listen(0); !status.ok()) {
    out.result = status;
    return out;
  }
  out.root_status_port = root.status_port();

  const std::string dir = testing::TempDir();
  std::vector<std::string> port_files;
  std::vector<pid_t> pids;
  for (int a = 0; a < config.num_aggregators; ++a) {
    port_files.push_back(dir + "/fedgta_hier_agg_" + std::to_string(getpid()) +
                         "_" + std::to_string(a) + ".port");
    std::remove(port_files.back().c_str());
    pids.push_back(
        SpawnAggregator(root.port(), port_files.back(), agg_status_ports));
  }

  Result<SimulationResult> result = InternalError("root thread never ran");
  std::thread root_thread([&] { result = root.Run(); });

  // The aggregators publish their worker ports only after the root's
  // ShardAssign, so polling doubles as the handshake barrier. Launch each
  // shard's worker slice as soon as its file appears; a file that never
  // appears surfaces as the root's accept timeout through `result`.
  const fed::Topology topo(config.split.num_clients, config.num_aggregators,
                           config.num_workers);
  std::vector<bool> launched(port_files.size(), false);
  size_t remaining = port_files.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (remaining > 0 && std::chrono::steady_clock::now() < deadline) {
    for (size_t f = 0; f < port_files.size(); ++f) {
      if (launched[f]) continue;
      int port = 0;
      int agg_index = -1;
      if (!ReadPortFile(port_files[f], &port, &agg_index)) continue;
      EXPECT_LT(agg_index, config.num_aggregators);
      for (int w = 0; w < topo.WorkerShard(agg_index).size(); ++w) {
        pids.push_back(SpawnWorker(port));
      }
      launched[f] = true;
      --remaining;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(remaining, 0u) << "aggregator(s) never published a port file";

  root_thread.join();
  out.result = std::move(result);
  if (out.root_status_port > 0) {
    // Queried after the run: the aggregator processes are about to exit
    // (or already have), which is exactly the dead-mid-tier view the
    // status satellite wants visible.
    out.final_status = QueryStatus(out.root_status_port, "status");
  }
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    out.exit_codes.push_back(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  }
  for (const std::string& f : port_files) std::remove(f.c_str());
  return out;
}

/// The same run, in process — the reference the hierarchy must reproduce.
SimulationResult RunInProcess(const RemoteFedConfig& config) {
  FederatedDataset data = MaterializeFederatedDataset(
      config.dataset, config.seed, config.split, config.federated);
  Result<std::unique_ptr<Strategy>> strategy =
      MakeStrategy(config.strategy, config.strategy_options);
  EXPECT_TRUE(strategy.ok()) << strategy.status();
  SimulationConfig sim = config.sim;
  sim.seed = config.seed;
  Simulation simulation(&data, config.model, config.optimizer,
                        std::move(*strategy), sim);
  return simulation.Run();
}

void ExpectBitIdentical(const SimulationResult& remote,
                        const SimulationResult& local) {
  EXPECT_EQ(remote.best_test_accuracy, local.best_test_accuracy);
  EXPECT_EQ(remote.final_test_accuracy, local.final_test_accuracy);
  EXPECT_EQ(remote.total_upload_floats, local.total_upload_floats);
  EXPECT_EQ(remote.total_download_floats, local.total_download_floats);
  EXPECT_EQ(remote.total_dropped_clients, local.total_dropped_clients);
  EXPECT_EQ(remote.total_straggler_clients, local.total_straggler_clients);
  EXPECT_EQ(remote.total_crashed_clients, local.total_crashed_clients);
  ASSERT_EQ(remote.curve.size(), local.curve.size());
  for (size_t i = 0; i < remote.curve.size(); ++i) {
    const RoundStats& r = remote.curve[i];
    const RoundStats& l = local.curve[i];
    EXPECT_EQ(r.round, l.round);
    EXPECT_EQ(r.test_accuracy, l.test_accuracy) << "round " << r.round;
    EXPECT_EQ(r.val_accuracy, l.val_accuracy) << "round " << r.round;
    EXPECT_EQ(r.train_loss, l.train_loss) << "round " << r.round;
    EXPECT_EQ(r.upload_floats, l.upload_floats) << "round " << r.round;
    EXPECT_EQ(r.download_floats, l.download_floats) << "round " << r.round;
    EXPECT_EQ(r.dropped_clients, l.dropped_clients);
    EXPECT_EQ(r.straggler_clients, l.straggler_clients);
    EXPECT_EQ(r.crashed_clients, l.crashed_clients);
  }
}

RemoteFedConfig BaseConfig() {
  RemoteFedConfig config;
  config.dataset = "cora";
  config.seed = 7;
  config.split.num_clients = 10;
  config.model.type = ModelType::kSgc;
  config.model.hidden = 16;
  config.model.k = 2;
  config.strategy = "fedgta";
  config.sim.rounds = 3;
  config.sim.local_epochs = 2;
  config.sim.eval_every = 1;
  config.num_workers = 4;
  config.num_aggregators = 2;
  config.rpc.deadline_ms = 120000;
  config.accept_timeout_ms = 120000;
  return config;
}

TEST(HierarchyTest, FedGtaOverTwoAggregatorsIsBitIdenticalToSimulation) {
  // The acceptance topology: root + 2 aggregators + 4 workers, with the
  // root and mid-tier status endpoints live.
  RemoteFedConfig config = BaseConfig();
  config.status_port = 0;
  const HierarchicalOutcome out =
      RunHierarchical(config, /*agg_status_ports=*/true);
  ASSERT_TRUE(out.result.ok()) << out.result.status();
  for (int code : out.exit_codes) EXPECT_EQ(code, 0);
  const SimulationResult local = RunInProcess(config);
  ExpectBitIdentical(*out.result, local);
  EXPECT_GT(local.final_test_accuracy, 0.2);

  // Mid-tier visibility (satellite): the root's status table names every
  // aggregator with its shard bounds, and the live probe notices that the
  // mid-tier processes are gone after shutdown.
  const std::string& status = out.final_status;
  EXPECT_NE(status.find("fedgta root status"), std::string::npos) << status;
  EXPECT_NE(status.find("aggregators: 2"), std::string::npos) << status;
  EXPECT_NE(status.find("aggregator 0: healthy shard=[0,5) clients=5 "
                        "workers=2"),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("aggregator 1: healthy shard=[5,10) clients=5 "
                        "workers=2"),
            std::string::npos)
      << status;
}

TEST(HierarchyTest, FailureInjectionAndSamplingStayIdentical) {
  // Dropouts, stragglers, crashes, and partial participation crossing
  // shard boundaries: the shard partition of each round's sampled
  // participants must reproduce the flat run's fate bookkeeping exactly.
  RemoteFedConfig config = BaseConfig();
  config.seed = 11;
  config.sim.participation = 0.6;
  config.sim.failure.dropout_rate = 0.25;
  config.sim.failure.straggler_rate = 0.15;
  config.sim.failure.crash_rate = 0.15;
  const HierarchicalOutcome out = RunHierarchical(config);
  ASSERT_TRUE(out.result.ok()) << out.result.status();
  const SimulationResult local = RunInProcess(config);
  EXPECT_GT(local.total_dropped_clients + local.total_straggler_clients +
                local.total_crashed_clients,
            0);
  ExpectBitIdentical(*out.result, local);
}

TEST(HierarchyTest, RelayedFedAvgIsBitIdenticalToSimulation) {
  // fedavg does not upload topology metrics, so the aggregators collapse
  // to relay hops: the root aggregates centrally and the mid-tier only
  // fans the global model out and the survivor weights back up.
  RemoteFedConfig config = BaseConfig();
  config.strategy = "fedavg";
  config.sim.rounds = 2;
  const HierarchicalOutcome out = RunHierarchical(config);
  ASSERT_TRUE(out.result.ok()) << out.result.status();
  for (int code : out.exit_codes) EXPECT_EQ(code, 0);
  ExpectBitIdentical(*out.result, RunInProcess(config));
}

TEST(HierarchyTest, NonShardableStrategyIsRejectedBeforeAccepting) {
  // `local` is remote-executable on the flat plane but does not declare
  // Capabilities().shardable — the hierarchical root must refuse it before
  // any aggregator is accepted.
  RemoteFedConfig config = BaseConfig();
  config.strategy = "local";
  fed::RootCoordinator root(config);
  ASSERT_TRUE(root.Listen(0).ok());
  const Result<SimulationResult> result = root.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("shard"), std::string::npos)
      << result.status();
}

TEST(HierarchyTest, AsyncRuntimeIsRejectedAtListen) {
  RemoteFedConfig config = BaseConfig();
  config.sim.async = true;
  config.sim.staleness_tau = 1;
  fed::RootCoordinator root(config);
  const Status status = root.Listen(0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, TopologyRejectsMoreAggregatorsThanWorkers) {
  RemoteFedConfig config = BaseConfig();
  config.num_aggregators = 5;
  config.num_workers = 4;
  fed::RootCoordinator root(config);
  const Status status = root.Listen(0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fedgta
