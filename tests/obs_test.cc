#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace fedgta {
namespace {

// --- Minimal JSON syntax validator -----------------------------------------
// Accepts the full JSON grammar; used to assert exports are well-formed
// without pulling in a JSON dependency.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.Record(0.5);
  h.Record(2.0);
  h.Record(0.25);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 2.75);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.75 / 3.0);
}

TEST(HistogramTest, CustomBoundsAndOverflowBucket) {
  Histogram h({1.0, 10.0});
  h.Record(0.5);    // bucket 0 (<= 1)
  h.Record(5.0);    // bucket 1 (<= 10)
  h.Record(100.0);  // overflow
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[0], 1);
  EXPECT_EQ(s.bucket_counts[1], 1);
  EXPECT_EQ(s.bucket_counts[2], 1);
}

TEST(HistogramTest, QuantileEstimates) {
  // 1000 uniform samples in (0, 1]: quantiles should be close to q.
  Histogram h({0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i) / 1000.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_NEAR(s.Quantile(0.5), 0.5, 0.11);
  EXPECT_NEAR(s.Quantile(0.9), 0.9, 0.11);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), s.min);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), s.max);
  // Estimates never leave the observed range.
  EXPECT_GE(s.Quantile(0.99), s.min);
  EXPECT_LE(s.Quantile(0.99), s.max);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, ReturnsStableInstances) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("test.calls");
  Counter& b = reg.GetCounter("test.calls");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.FindCounter("test.calls"), &a);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceKeepingReferences) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test.calls");
  Histogram& h = reg.GetHistogram("test.seconds");
  c.Increment(7);
  h.Record(1.0);
  reg.Reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  // The same storage is still wired into the registry after Reset.
  c.Increment();
  EXPECT_EQ(reg.FindCounter("test.calls")->value(), 1);
}

TEST(MetricsRegistryTest, ConcurrentUpdates) {
  MetricsRegistry reg;
  Counter& counter = reg.GetCounter("concurrent.calls");
  Histogram& histogram = reg.GetHistogram("concurrent.seconds");
  constexpr int64_t kN = 20000;
  ParallelFor(0, kN, [&](int64_t i) {
    counter.Increment();
    histogram.Record(static_cast<double>(i % 100) * 1e-3);
    // Concurrent lookups must also be safe.
    reg.GetGauge("concurrent.gauge").Set(static_cast<double>(i));
  });
  EXPECT_EQ(counter.value(), kN);
  EXPECT_EQ(histogram.count(), kN);
  const Histogram::Snapshot s = histogram.snapshot();
  int64_t bucket_total = 0;
  for (int64_t b : s.bucket_counts) bucket_total += b;
  EXPECT_EQ(bucket_total, kN);
}

TEST(MetricsRegistryTest, TextExportListsEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("a.calls").Increment(3);
  reg.GetGauge("b.value").Set(1.25);
  reg.GetHistogram("c.seconds").Record(0.5);
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("counter a.calls 3"), std::string::npos);
  EXPECT_NE(text.find("gauge b.value 1.25"), std::string::npos);
  EXPECT_NE(text.find("histogram c.seconds count=1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportIsWellFormed) {
  MetricsRegistry reg;
  const std::string empty = reg.ToJson();
  EXPECT_TRUE(JsonValidator(empty).Valid()) << empty;

  reg.GetCounter("phase.spmm.calls").Increment(12);
  reg.GetGauge("g").Set(-3.5);
  Histogram& h = reg.GetHistogram("phase.spmm.seconds");
  h.Record(1e-4);
  h.Record(2e-3);
  h.Record(250.0);  // overflow bucket ("le": "+inf")
  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"phase.spmm.calls\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"phase.spmm.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(PhaseScopeTest, AccumulatesIntoGlobalRegistry) {
  const Counter* before = GlobalMetrics().FindCounter("phase.obs_test.calls");
  const int64_t calls_before = before != nullptr ? before->value() : 0;
  {
    FEDGTA_PHASE_SCOPE("obs_test");
  }
  const Counter* after = GlobalMetrics().FindCounter("phase.obs_test.calls");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->value(), calls_before + 1);
  const Histogram* seconds =
      GlobalMetrics().FindHistogram("phase.obs_test.seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_GE(seconds->count(), 1);
}

TEST(TraceTest, DisabledScopeEmitsNothing) {
  DisableTracing();
  ClearTrace();
  {
    FEDGTA_TRACE_SCOPE("invisible");
  }
  for (const TraceEvent& e : CollectTraceEvents()) {
    EXPECT_STRNE(e.name, "invisible");
  }
}

TEST(TraceTest, ScopeProducesBeginEndPair) {
  ClearTrace();
  EnableTracing();
  {
    FEDGTA_TRACE_SCOPE("obs_test_span");
  }
  DisableTracing();
  bool found = false;
  for (const TraceEvent& e : CollectTraceEvents()) {
    if (std::string_view(e.name) != "obs_test_span") continue;
    found = true;
    // A complete ("X") event encodes the begin/end pair as ts + dur; both
    // must be non-negative and the end must not precede the begin.
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
  EXPECT_TRUE(found);
  ClearTrace();
}

TEST(TraceTest, ChromeTraceFileIsValidJson) {
  ClearTrace();
  EnableTracing();
  {
    FEDGTA_TRACE_SCOPE("outer");
    FEDGTA_TRACE_SCOPE("inner");
  }
  DisableTracing();
  const std::string path = testing::TempDir() + "/fedgta_obs_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_TRUE(JsonValidator(content).Valid()) << content;
  EXPECT_NE(content.find("\"outer\""), std::string::npos);
  EXPECT_NE(content.find("\"inner\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
  std::remove(path.c_str());
  ClearTrace();
}

TEST(TraceTest, EventsFromWorkerThreadsAreCollected) {
  ClearTrace();
  EnableTracing();
  ParallelFor(0, 64, [](int64_t) { FEDGTA_TRACE_SCOPE("pool_span"); },
              /*grain=*/1);
  DisableTracing();
  int found = 0;
  for (const TraceEvent& e : CollectTraceEvents()) {
    if (std::string_view(e.name) == "pool_span") ++found;
  }
  EXPECT_EQ(found, 64);
  ClearTrace();
}

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            std::string_view name) {
  for (const TraceEvent& e : events) {
    if (std::string_view(e.name) == name) return &e;
  }
  return nullptr;
}

TEST(TraceContextTest, NestedScopesChainParentSpans) {
  ClearTrace();
  EnableTracing();
  TraceContext ctx;
  ctx.trace_id = 0xABCDu;
  ctx.round = 7;
  {
    ScopedTraceContext install(ctx);
    FEDGTA_TRACE_SCOPE("ctx_outer");
    FEDGTA_TRACE_SCOPE("ctx_inner");
  }
  DisableTracing();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  const TraceEvent* outer = FindEvent(events, "ctx_outer");
  const TraceEvent* inner = FindEvent(events, "ctx_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->trace_id, 0xABCDu);
  EXPECT_EQ(inner->trace_id, 0xABCDu);
  EXPECT_EQ(outer->round, 7);
  EXPECT_EQ(inner->round, 7);
  // The inner span's parent is the outer span; the outer span's parent is
  // whatever the installed context carried (here: none).
  EXPECT_NE(outer->span_id, 0u);
  EXPECT_NE(inner->span_id, 0u);
  EXPECT_NE(outer->span_id, inner->span_id);
  EXPECT_EQ(inner->parent_span, outer->span_id);
  EXPECT_EQ(outer->parent_span, 0u);
  ClearTrace();
}

TEST(TraceContextTest, ScopedInstallRestoresPreviousContext) {
  TraceContext ctx;
  ctx.trace_id = 1;
  ctx.round = 3;
  {
    ScopedTraceContext install(ctx);
    EXPECT_EQ(CurrentTraceContext().trace_id, 1u);
    EXPECT_EQ(CurrentTraceContext().round, 3);
    TraceContext deeper;
    deeper.trace_id = 2;
    {
      ScopedTraceContext install2(deeper);
      EXPECT_EQ(CurrentTraceContext().trace_id, 2u);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 1u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
}

TEST(TraceContextTest, NewTraceIdsAreNonZeroAndDistinct) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceContextTest, ChromeOutputCarriesContextPidAndOffset) {
  ClearTrace();
  SetTraceProcessId(5);
  SetTraceProcessName("obs_test_proc");
  SetTraceClockOffset(1000000);
  EnableTracing();
  TraceContext ctx;
  ctx.trace_id = 0xBEEFu;
  ctx.round = 2;
  {
    ScopedTraceContext install(ctx);
    FEDGTA_TRACE_SCOPE("offset_span");
  }
  DisableTracing();
  const std::string path = testing::TempDir() + "/fedgta_obs_ctx_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_TRUE(JsonValidator(content).Valid()) << content;
  EXPECT_NE(content.find("\"pid\": 5"), std::string::npos);
  EXPECT_NE(content.find("obs_test_proc"), std::string::npos);
  EXPECT_NE(content.find("\"trace_id\": \"beef\""), std::string::npos);
  EXPECT_NE(content.find("\"round\": 2"), std::string::npos);
  // The offset shifts the emitted timestamps onto the server timebase; the
  // raw in-memory event keeps the local clock.
  const std::vector<TraceEvent> events = CollectTraceEvents();
  const TraceEvent* e = FindEvent(events, "offset_span");
  ASSERT_NE(e, nullptr);
  const std::string shifted =
      "\"ts\": " + std::to_string(e->ts_us + 1000000);
  EXPECT_NE(content.find(shifted), std::string::npos) << content;
  std::remove(path.c_str());
  SetTraceClockOffset(0);
  SetTraceProcessId(1);
  SetTraceProcessName("fedgta");
  ClearTrace();
}

TEST(TraceMergeTest, CombinesFilesIntoOneValidTrace) {
  const std::string dir = testing::TempDir();
  const std::string a = dir + "/fedgta_merge_a.json";
  const std::string b = dir + "/fedgta_merge_b.json";
  const std::string out = dir + "/fedgta_merge_out.json";

  ClearTrace();
  SetTraceProcessId(1);
  SetTraceProcessName("server");
  EnableTracing();
  {
    FEDGTA_TRACE_SCOPE("server_span");
  }
  DisableTracing();
  ASSERT_TRUE(WriteChromeTrace(a).ok());

  ClearTrace();
  SetTraceProcessId(2);
  SetTraceProcessName("worker");
  EnableTracing();
  {
    FEDGTA_TRACE_SCOPE("worker_span");
  }
  DisableTracing();
  ASSERT_TRUE(WriteChromeTrace(b).ok());
  SetTraceProcessId(1);
  SetTraceProcessName("fedgta");
  ClearTrace();

  ASSERT_TRUE(MergeChromeTraces({a, b}, out).ok());
  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_TRUE(JsonValidator(content).Valid()) << content;
  EXPECT_NE(content.find("\"server_span\""), std::string::npos);
  EXPECT_NE(content.find("\"worker_span\""), std::string::npos);
  EXPECT_NE(content.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(content.find("\"pid\": 2"), std::string::npos);

  EXPECT_FALSE(MergeChromeTraces({dir + "/fedgta_missing.json"}, out).ok());
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(out.c_str());
}

TEST(TimelineTest, RecordsRoundsAndRendersValidJsonLines) {
  Timeline timeline;
  timeline.RoundStart(1, 4);
  timeline.ClientFate(1, 0, "healthy", 0.5);
  timeline.ClientFate(1, 1, "dropout", 0.0);
  timeline.RoundEnd(1, 0.25, 0.05, 1024, 2048, 1, 0, 0);
  timeline.RoundStart(2, 4);
  EXPECT_EQ(timeline.current_round(), 2);
  ASSERT_GE(timeline.size(), 5u);

  const std::string lines = timeline.ToJsonLines();
  std::stringstream stream(lines);
  std::string line;
  int n_lines = 0;
  while (std::getline(stream, line)) {
    ++n_lines;
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  }
  EXPECT_GE(n_lines, 5);
  EXPECT_NE(lines.find("\"round_start\""), std::string::npos);
  EXPECT_NE(lines.find("\"round_end\""), std::string::npos);
  EXPECT_NE(lines.find("\"client_fate\""), std::string::npos);
  EXPECT_NE(lines.find("\"dropout\""), std::string::npos);
}

TEST(TimelineTest, CapacityBoundDropsOldestAndCounts) {
  Timeline timeline(/*capacity=*/4);
  for (int round = 1; round <= 6; ++round) timeline.RoundStart(round, 1);
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline.dropped_events(), 2);
  // The newest events survive.
  EXPECT_EQ(timeline.current_round(), 6);
  EXPECT_EQ(timeline.Events().front().round, 3);
}

}  // namespace
}  // namespace fedgta
