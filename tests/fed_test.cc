#include <cmath>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/federated.h"
#include "fed/failure.h"
#include "fed/feddc.h"
#include "fed/fedgl.h"
#include "fed/fedgta_strategy.h"
#include "fed/fedprox.h"
#include "fed/fedsage.h"
#include "fed/gcfl_plus.h"
#include "fed/moon.h"
#include "fed/scaffold.h"
#include "fed/simulation.h"
#include "fed/strategy.h"
#include "graph/generator.h"
#include "linalg/ops.h"
#include "obs/metrics.h"

namespace fedgta {
namespace {

// Small synthetic federated dataset for strategy tests.
FederatedDataset MakeTinyFederated(int num_clients = 4, uint64_t seed = 1,
                                   bool inductive = false) {
  SbmConfig cfg;
  cfg.num_nodes = 400;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.85;
  cfg.regions_per_class = 2;
  Rng rng(seed);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.name = "tiny";
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 4;
  FeatureConfig fcfg;
  fcfg.dim = 8;
  fcfg.noise_scale = 1.5f;
  ds.features = GenerateFeatures(ds.labels, 4, fcfg, rng);
  ds.inductive = inductive;
  StratifiedSplit(ds.labels, 4, 0.3, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.method = SplitMethod::kLouvain;
  split.num_clients = num_clients;
  Rng srng(seed ^ 7);
  return BuildFederatedDataset(std::move(ds), split, srng);
}

ModelConfig TinyModel() {
  ModelConfig cfg;
  cfg.type = ModelType::kSgc;
  cfg.k = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(ClientTest, ParamsRoundTrip) {
  FederatedDataset fed = MakeTinyFederated();
  Client client(&fed.clients[0], TinyModel(), OptimizerConfig{}, 3);
  const std::vector<float> params = client.GetParams();
  EXPECT_EQ(static_cast<int64_t>(params.size()), client.param_count());
  std::vector<float> doubled = params;
  for (float& v : doubled) v *= 2.0f;
  client.SetParams(doubled);
  EXPECT_EQ(client.GetParams(), doubled);
}

TEST(ClientTest, TrainingReducesLoss) {
  FederatedDataset fed = MakeTinyFederated();
  OptimizerConfig opt;
  opt.lr = 0.05f;
  Client client(&fed.clients[0], TinyModel(), opt, 3);
  const double first = client.TrainLocal(1);
  double last = first;
  for (int i = 0; i < 20; ++i) last = client.TrainLocal(1);
  EXPECT_LT(last, first);
  EXPECT_GT(client.TestAccuracy(), 0.3);
}

TEST(ClientTest, GradHookObservesAndModifiesGrads) {
  FederatedDataset fed = MakeTinyFederated();
  Client client(&fed.clients[0], TinyModel(), OptimizerConfig{}, 3);
  const std::vector<float> before = client.GetParams();
  TrainHooks hooks;
  int calls = 0;
  hooks.grad_hook = [&calls](std::span<const float> params,
                             std::span<float> grads) {
    ++calls;
    EXPECT_EQ(params.size(), grads.size());
    // Zero out all gradients: weights must not change.
    for (float& g : grads) g = 0.0f;
  };
  client.TrainLocal(3, hooks);
  EXPECT_EQ(calls, 3);
  const std::vector<float> after = client.GetParams();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-3f)
        << "zeroed grads (weight decay aside) should freeze weights";
  }
}

TEST(ClientTest, FedGtaMetricsWellFormed) {
  FederatedDataset fed = MakeTinyFederated();
  Client client(&fed.clients[1], TinyModel(), OptimizerConfig{}, 3);
  FedGtaOptions options;
  options.k = 3;
  options.moment_order = 2;
  const ClientMetrics metrics = client.ComputeFedGtaMetrics(options);
  EXPECT_GT(metrics.confidence, 0.0);
  EXPECT_EQ(metrics.moments.size(), 3u * 2u * 4u);
}

TEST(ClientTest, EmptyTrainSetIsNoop) {
  FederatedDataset fed = MakeTinyFederated();
  ClientData shard = fed.clients[0];
  shard.train_idx.clear();
  Client client(&shard, TinyModel(), OptimizerConfig{}, 3);
  const std::vector<float> before = client.GetParams();
  EXPECT_DOUBLE_EQ(client.TrainLocal(5), 0.0);
  EXPECT_EQ(client.GetParams(), before);
}

TEST(MergeHooksTest, BothHooksRun) {
  int a = 0, b = 0;
  TrainHooks ha, hb;
  ha.grad_hook = [&a](std::span<const float>, std::span<float>) { ++a; };
  hb.grad_hook = [&b](std::span<const float>, std::span<float>) { ++b; };
  ha.logits_hook = [](const Matrix&, Matrix*) { return 1.0; };
  hb.logits_hook = [](const Matrix&, Matrix*) { return 2.0; };
  TrainHooks merged = MergeHooks(ha, hb);
  std::vector<float> p{1.0f}, g{1.0f};
  merged.grad_hook(p, g);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  Matrix logits(1, 1);
  EXPECT_DOUBLE_EQ(merged.logits_hook(logits, nullptr), 3.0);
  TrainHooks one = MergeHooks(ha, TrainHooks{});
  one.grad_hook(p, g);
  EXPECT_EQ(a, 2);
}

TEST(StrategyTest, ListAndFactory) {
  const auto names = ListStrategies();
  EXPECT_EQ(names.size(), 8u);
  StrategyOptions options;
  for (const std::string& name : names) {
    const auto strategy = MakeStrategy(name, options);
    ASSERT_TRUE(strategy.ok()) << name;
    EXPECT_EQ((*strategy)->name(), name);
  }
  EXPECT_FALSE(MakeStrategy("fedsgd", options).ok());
}

TEST(FedAvgTest, WeightedAverageBySampleCount) {
  FedAvgStrategy strategy;
  strategy.Initialize(2, {30, 10}, {0.0f, 0.0f});
  std::vector<LocalResult> results(2);
  results[0] = {0, {4.0f, 0.0f}, 30, 0.0, {}};
  results[1] = {1, {0.0f, 8.0f}, 10, 0.0, {}};
  strategy.Aggregate({0, 1}, results);
  const auto params = strategy.ParamsFor(0);
  EXPECT_NEAR(params[0], 3.0f, 1e-6f);  // 4 * 30/40
  EXPECT_NEAR(params[1], 2.0f, 1e-6f);  // 8 * 10/40
  // Both clients see the same global model.
  EXPECT_EQ(strategy.ParamsFor(0).data(), strategy.ParamsFor(1).data());
}

TEST(LocalOnlyTest, KeepsPerClientParams) {
  LocalOnlyStrategy strategy;
  strategy.Initialize(2, {5, 5}, {1.0f});
  std::vector<LocalResult> results(1);
  results[0] = {1, {42.0f}, 5, 0.0, {}};
  strategy.Aggregate({1}, results);
  EXPECT_FLOAT_EQ(strategy.ParamsFor(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(strategy.ParamsFor(1)[0], 42.0f);
}

TEST(FedProxTest, ProximalTermPullsTowardGlobal) {
  FederatedDataset fed = MakeTinyFederated();
  OptimizerConfig opt;
  opt.lr = 0.05f;
  Client client_plain(&fed.clients[0], TinyModel(), opt, 3);
  Client client_prox(&fed.clients[0], TinyModel(), opt, 3);

  FedProxStrategy weak(0.0f);
  FedProxStrategy strong(10.0f);
  const std::vector<float> init = client_plain.GetParams();
  weak.Initialize(fed.num_clients(), {10, 10, 10, 10}, init);
  strong.Initialize(fed.num_clients(), {10, 10, 10, 10}, init);
  client_prox.SetParams(init);

  const LocalResult r_weak = weak.TrainClient(client_plain, 10, {});
  const LocalResult r_strong = strong.TrainClient(client_prox, 10, {});
  // Drift from the global anchor must be smaller under a strong prox term.
  double drift_weak = 0.0, drift_strong = 0.0;
  for (size_t i = 0; i < init.size(); ++i) {
    drift_weak += std::fabs(r_weak.params[i] - init[i]);
    drift_strong += std::fabs(r_strong.params[i] - init[i]);
  }
  EXPECT_LT(drift_strong, drift_weak);
}

TEST(ScaffoldTest, ControlVariatesUpdate) {
  FederatedDataset fed = MakeTinyFederated();
  OptimizerConfig opt;
  opt.type = OptimizerType::kSgd;
  opt.momentum = 0.0f;
  opt.lr = 0.05f;
  Client client(&fed.clients[0], TinyModel(), opt, 3);
  ScaffoldStrategy strategy(opt.lr);
  strategy.Initialize(fed.num_clients(), {10, 10, 10, 10}, client.GetParams());
  const LocalResult r = strategy.TrainClient(client, 3, {});
  EXPECT_EQ(r.params.size(), client.GetParams().size());
  strategy.Aggregate({0}, {r});
  // Second round must also run cleanly with updated control variates.
  const LocalResult r2 = strategy.TrainClient(client, 3, {});
  EXPECT_EQ(r2.client_id, 0);
}

TEST(MoonTest, RunsAndAggregates) {
  FederatedDataset fed = MakeTinyFederated();
  ModelConfig model;
  model.type = ModelType::kGcn;  // has a hidden representation
  model.hidden = 8;
  model.dropout = 0.0f;
  OptimizerConfig opt;
  Client client(&fed.clients[0], model, opt, 3);
  MoonStrategy strategy(1.0f, 0.5f);
  strategy.Initialize(fed.num_clients(), {10, 10, 10, 10}, client.GetParams());
  const LocalResult r = strategy.TrainClient(client, 2, {});
  EXPECT_GT(r.loss, 0.0);
  strategy.Aggregate({0}, {r});
}

TEST(FedDcTest, DriftAccumulates) {
  FederatedDataset fed = MakeTinyFederated();
  OptimizerConfig opt;
  opt.lr = 0.1f;
  Client client(&fed.clients[0], TinyModel(), opt, 3);
  FedDcStrategy strategy(0.01f);
  const std::vector<float> init = client.GetParams();
  strategy.Initialize(fed.num_clients(), {10, 10, 10, 10}, init);
  const LocalResult r = strategy.TrainClient(client, 5, {});
  strategy.Aggregate({0}, {r});
  // Global model moved away from init (drift-corrected average).
  double moved = 0.0;
  const auto now = strategy.ParamsFor(0);
  for (size_t i = 0; i < init.size(); ++i) moved += std::fabs(now[i] - init[i]);
  EXPECT_GT(moved, 0.0);
}

TEST(GcflPlusTest, SplitsDivergentClients) {
  GcflPlusStrategy strategy(/*window=*/2, /*eps1=*/10.0f, /*eps2=*/0.0f);
  // eps1 huge and eps2 tiny: the split criterion fires immediately.
  strategy.Initialize(4, {1, 1, 1, 1}, {0.0f, 0.0f});
  // Two groups with opposite update directions.
  std::vector<LocalResult> results(4);
  results[0] = {0, {1.0f, 0.0f}, 1, 0.0, {}};
  results[1] = {1, {1.0f, 0.1f}, 1, 0.0, {}};
  results[2] = {2, {-1.0f, 0.0f}, 1, 0.0, {}};
  results[3] = {3, {-1.0f, -0.1f}, 1, 0.0, {}};
  strategy.Aggregate({0, 1, 2, 3}, results);
  EXPECT_EQ(strategy.num_clusters(), 2);
  const auto& clusters = strategy.clusters();
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[2], clusters[3]);
  EXPECT_NE(clusters[0], clusters[2]);
  // Cluster models differ.
  EXPECT_NE(strategy.ParamsFor(0)[0], strategy.ParamsFor(2)[0]);
}

TEST(GcflPlusTest, NoSplitWhenCriterionUnmet) {
  GcflPlusStrategy strategy(/*window=*/2, /*eps1=*/1e-9f, /*eps2=*/1e9f);
  strategy.Initialize(4, {1, 1, 1, 1}, {0.0f});
  std::vector<LocalResult> results(4);
  for (int i = 0; i < 4; ++i) {
    results[static_cast<size_t>(i)] = {i, {static_cast<float>(i)}, 1, 0.0, {}};
  }
  strategy.Aggregate({0, 1, 2, 3}, results);
  EXPECT_EQ(strategy.num_clusters(), 1);
}

TEST(FedGtaStrategyTest, UploadsMetricsAndPersonalizes) {
  FederatedDataset fed = MakeTinyFederated();
  std::vector<Client> clients;
  for (const ClientData& shard : fed.clients) {
    clients.emplace_back(&shard, TinyModel(), OptimizerConfig{}, 3);
  }
  FedGtaOptions options;
  options.k = 2;
  options.moment_order = 2;
  options.epsilon = 0.9;  // strict: likely personalized sets
  FedGtaStrategy strategy(options);
  std::vector<int64_t> sizes;
  for (Client& c : clients) sizes.push_back(c.num_train());
  strategy.Initialize(fed.num_clients(), sizes, clients[0].GetParams());

  std::vector<LocalResult> results;
  std::vector<int> participants;
  for (Client& c : clients) {
    results.push_back(strategy.TrainClient(c, 2, {}));
    participants.push_back(c.id());
    EXPECT_GT(results.back().metrics.confidence, 0.0);
    EXPECT_FALSE(results.back().metrics.moments.empty());
  }
  strategy.Aggregate(participants, results);
  const auto& sets = strategy.last_aggregation_sets();
  ASSERT_EQ(sets.size(), static_cast<size_t>(fed.num_clients()));
  for (int i = 0; i < fed.num_clients(); ++i) {
    ASSERT_FALSE(sets[static_cast<size_t>(i)].empty());
    EXPECT_EQ(sets[static_cast<size_t>(i)].front(), i);
  }
}

TEST(FedSageTest, AugmentAddsGeneratedNodes) {
  FederatedDataset fed = MakeTinyFederated();
  FedSageConfig config;
  config.gen_epochs = 5;
  config.gen_fed_rounds = 1;
  Rng rng(11);
  const std::vector<ClientData> mended =
      FedSageAugment(fed.clients, config, rng);
  ASSERT_EQ(mended.size(), fed.clients.size());
  int64_t added = 0;
  for (size_t c = 0; c < mended.size(); ++c) {
    const ClientData& before = fed.clients[c];
    const ClientData& after = mended[c];
    EXPECT_GE(after.num_nodes(), before.num_nodes());
    added += after.num_nodes() - before.num_nodes();
    // Supervision masks unchanged.
    EXPECT_EQ(after.train_idx, before.train_idx);
    EXPECT_EQ(after.test_idx, before.test_idx);
    // Generated nodes carry the -1 global id sentinel.
    for (int64_t i = before.num_nodes(); i < after.num_nodes(); ++i) {
      EXPECT_EQ(after.sub.global_ids[static_cast<size_t>(i)], -1);
    }
    // Shapes consistent.
    EXPECT_EQ(after.features.rows(), after.num_nodes());
    EXPECT_EQ(static_cast<int64_t>(after.labels.size()), after.num_nodes());
    EXPECT_EQ(after.train_graph.num_nodes(), after.num_nodes());
  }
  EXPECT_GT(added, 0) << "the generator should mend at least some nodes";
}

TEST(FedGlTest, PseudoLabelsOnSharedNodes) {
  // Build with overlap so FedGL has shared nodes.
  SbmConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_classes = 3;
  cfg.avg_degree = 6.0;
  Rng rng(21);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 3;
  FeatureConfig fcfg;
  fcfg.dim = 6;
  ds.features = GenerateFeatures(ds.labels, 3, fcfg, rng);
  StratifiedSplit(ds.labels, 3, 0.3, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.num_clients = 3;
  FederatedOptions options;
  options.overlap_fraction = 0.15;
  Rng srng(22);
  FederatedDataset fed =
      BuildFederatedDataset(std::move(ds), split, srng, options);

  FedGlCoordinator coordinator(&fed, FedGlConfig{});
  EXPECT_GT(coordinator.num_shared_nodes(), 0);

  std::vector<Client> clients;
  for (const ClientData& shard : fed.clients) {
    clients.emplace_back(&shard, TinyModel(), OptimizerConfig{}, 3);
  }
  coordinator.UpdatePseudoLabels(clients, {0, 1, 2});
  // After the refresh, at least one client's hooks add pseudo loss.
  double total_extra = 0.0;
  for (Client& c : clients) {
    TrainHooks hooks = coordinator.HooksFor(c.id());
    ASSERT_TRUE(static_cast<bool>(hooks.logits_hook));
    Matrix logits = c.Predict();
    Matrix dlogits(logits.rows(), logits.cols());
    total_extra += hooks.logits_hook(logits, &dlogits);
  }
  EXPECT_GT(total_extra, 0.0);
}

TEST(SimulationTest, RunsAndTracksCurve) {
  FederatedDataset fed = MakeTinyFederated();
  StrategyOptions sopt;
  auto strategy = MakeStrategy("fedavg", sopt);
  SimulationConfig sim;
  sim.rounds = 5;
  sim.local_epochs = 2;
  sim.eval_every = 1;
  Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy), sim);
  const SimulationResult result = simulation.Run();
  EXPECT_EQ(result.curve.size(), 5u);
  EXPECT_GT(result.final_test_accuracy, 0.2);
  EXPECT_GE(result.best_test_accuracy, 0.0);
  EXPECT_GT(result.total_client_seconds, 0.0);
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GT(result.curve[i].round, result.curve[i - 1].round);
    EXPECT_GE(result.curve[i].client_seconds, result.curve[i - 1].client_seconds);
  }
}

TEST(SimulationTest, PartialParticipationSamplesSubset) {
  FederatedDataset fed = MakeTinyFederated(6);
  StrategyOptions sopt;
  auto strategy = MakeStrategy("fedavg", sopt);
  SimulationConfig sim;
  sim.rounds = 3;
  sim.participation = 0.34;  // 2 of 6 clients per round
  Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy), sim);
  const SimulationResult result = simulation.Run();
  EXPECT_EQ(result.curve.size(), 3u);
}

TEST(SimulationTest, DeterministicPerSeed) {
  SimulationConfig sim;
  sim.rounds = 3;
  sim.eval_every = 1;
  sim.seed = 99;
  StrategyOptions sopt;
  double acc[2];
  for (int trial = 0; trial < 2; ++trial) {
    FederatedDataset fed = MakeTinyFederated(4, /*seed=*/5);
    auto strategy = MakeStrategy("fedgta", sopt);
    Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                          std::move(*strategy), sim);
    acc[trial] = simulation.Run().final_test_accuracy;
  }
  EXPECT_DOUBLE_EQ(acc[0], acc[1]);
}

// Runs one simulation with `pool_size` workers and returns its full
// evaluation curve. Dropout, minibatching, and partial participation are all
// on so every per-client RNG stream is exercised under concurrency.
std::vector<RoundStats> RunCurveWithPoolSize(const std::string& strategy_name,
                                             int pool_size) {
  SetGlobalThreadPoolSize(pool_size);
  FederatedDataset fed = MakeTinyFederated(/*num_clients=*/6, /*seed=*/5);
  ModelConfig model = TinyModel();
  model.dropout = 0.3f;
  SimulationConfig sim;
  sim.rounds = 4;
  sim.local_epochs = 2;
  sim.batch_size = 16;
  sim.participation = 0.7;
  sim.eval_every = 1;
  sim.seed = 99;
  StrategyOptions sopt;
  auto strategy = MakeStrategy(strategy_name, sopt);
  EXPECT_TRUE(strategy.ok());
  Simulation simulation(&fed, model, OptimizerConfig{}, std::move(*strategy),
                        sim);
  return simulation.Run().curve;
}

// The round executor's determinism guarantee (DESIGN.md "Execution
// engine"): a run with a 4-worker pool is bit-identical to the 1-worker
// serial run, per round, for losses and accuracies alike.
class ParallelDeterminismTest
    : public testing::TestWithParam<const char*> {
 protected:
  ~ParallelDeterminismTest() override { SetGlobalThreadPoolSize(0); }
};

TEST_P(ParallelDeterminismTest, ParallelRunMatchesSerialBitExactly) {
  const std::vector<RoundStats> serial = RunCurveWithPoolSize(GetParam(), 1);
  const std::vector<RoundStats> parallel =
      RunCurveWithPoolSize(GetParam(), 4);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  for (size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].round, parallel[r].round);
    EXPECT_DOUBLE_EQ(serial[r].train_loss, parallel[r].train_loss)
        << GetParam() << " round " << serial[r].round;
    EXPECT_DOUBLE_EQ(serial[r].val_accuracy, parallel[r].val_accuracy)
        << GetParam() << " round " << serial[r].round;
    EXPECT_DOUBLE_EQ(serial[r].test_accuracy, parallel[r].test_accuracy)
        << GetParam() << " round " << serial[r].round;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ParallelDeterminismTest,
                         testing::Values("fedavg", "fedgta", "scaffold"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// Runs the full simulation for `strategy_name` either straight through or
// killed at round `halt_at` and resumed from the checkpoint, with
// `pool_size` workers. Returns the curve; timings are zeroed so comparisons
// cover only deterministic quantities.
std::vector<RoundStats> RunMaybeResumed(const std::string& strategy_name,
                                        int pool_size, int halt_at,
                                        const std::string& dir) {
  SetGlobalThreadPoolSize(pool_size);
  ModelConfig model = TinyModel();
  model.dropout = 0.3f;
  SimulationConfig sim;
  sim.rounds = 4;
  sim.local_epochs = 2;
  sim.batch_size = 16;
  sim.participation = 0.7;
  sim.eval_every = 1;
  sim.seed = 99;
  StrategyOptions sopt;
  SimulationResult result;
  if (halt_at <= 0) {
    FederatedDataset fed = MakeTinyFederated(/*num_clients=*/6, /*seed=*/5);
    auto strategy = MakeStrategy(strategy_name, sopt);
    Simulation simulation(&fed, model, OptimizerConfig{},
                          std::move(*strategy), sim);
    result = simulation.Run();
  } else {
    sim.checkpoint_dir = dir;
    sim.checkpoint_every = 1;
    std::filesystem::remove_all(dir);
    {
      SimulationConfig first = sim;
      first.halt_after_round = halt_at;
      FederatedDataset fed = MakeTinyFederated(6, 5);
      auto strategy = MakeStrategy(strategy_name, sopt);
      Simulation simulation(&fed, model, OptimizerConfig{},
                            std::move(*strategy), first);
      const SimulationResult partial = simulation.Run();
      EXPECT_EQ(partial.curve.size(), static_cast<size_t>(halt_at));
    }
    // "Process restart": everything rebuilt from scratch, state from disk.
    SimulationConfig second = sim;
    second.resume = true;
    FederatedDataset fed = MakeTinyFederated(6, 5);
    auto strategy = MakeStrategy(strategy_name, sopt);
    Simulation simulation(&fed, model, OptimizerConfig{},
                          std::move(*strategy), second);
    result = simulation.Run();
    EXPECT_EQ(result.resumed_from_round, halt_at);
    std::filesystem::remove_all(dir);
  }
  for (RoundStats& stats : result.curve) {
    stats.client_seconds = 0.0;
    stats.server_seconds = 0.0;
  }
  return result.curve;
}

// Checkpoint/resume determinism: killing the run at a round boundary and
// resuming from the checkpoint yields the exact curve of an uninterrupted
// run — for every strategy with cross-round server state, serial and with a
// 4-worker pool.
class ResumeDeterminismTest : public testing::TestWithParam<const char*> {
 protected:
  ~ResumeDeterminismTest() override { SetGlobalThreadPoolSize(0); }
};

TEST_P(ResumeDeterminismTest, ResumedRunMatchesUninterruptedBitExactly) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("fedgta_resume_") + GetParam()))
          .string();
  for (int pool_size : {1, 4}) {
    const std::vector<RoundStats> straight =
        RunMaybeResumed(GetParam(), pool_size, /*halt_at=*/0, dir);
    const std::vector<RoundStats> resumed =
        RunMaybeResumed(GetParam(), pool_size, /*halt_at=*/2, dir);
    ASSERT_EQ(straight.size(), resumed.size());
    ASSERT_FALSE(straight.empty());
    for (size_t r = 0; r < straight.size(); ++r) {
      EXPECT_EQ(straight[r].round, resumed[r].round);
      EXPECT_DOUBLE_EQ(straight[r].train_loss, resumed[r].train_loss)
          << GetParam() << " pool " << pool_size << " round "
          << straight[r].round;
      EXPECT_DOUBLE_EQ(straight[r].val_accuracy, resumed[r].val_accuracy)
          << GetParam() << " pool " << pool_size << " round "
          << straight[r].round;
      EXPECT_DOUBLE_EQ(straight[r].test_accuracy, resumed[r].test_accuracy)
          << GetParam() << " pool " << pool_size << " round "
          << straight[r].round;
      EXPECT_EQ(straight[r].upload_floats, resumed[r].upload_floats);
      EXPECT_EQ(straight[r].download_floats, resumed[r].download_floats);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ResumeDeterminismTest,
                         testing::Values("fedavg", "fedgta", "scaffold"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// Failure injection end to end: a 20% deterministic dropout run completes,
// reports its failure counts through the curve, the metrics registry, and
// the result totals, and FedGTA's Eq. (7) aggregation sets renormalize over
// the surviving participants only.
TEST(SimulationFailureTest, DropoutRunCompletesAndCountsFailures) {
  FederatedDataset fed = MakeTinyFederated(/*num_clients=*/6, /*seed=*/5);
  StrategyOptions sopt;
  auto strategy = MakeStrategy("fedgta", sopt);
  Strategy* strategy_ptr = strategy->get();
  SimulationConfig sim;
  sim.rounds = 5;
  sim.local_epochs = 2;
  sim.eval_every = 1;
  sim.seed = 99;
  sim.failure.dropout_rate = 0.2;
  sim.failure.seed = 7;
  Counter& dropped_counter =
      GlobalMetrics().GetCounter("fed.round.dropped_clients");
  const int64_t dropped_before = dropped_counter.value();
  Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy), sim);
  const SimulationResult result = simulation.Run();

  EXPECT_EQ(result.curve.size(), 5u);
  EXPECT_GT(result.final_test_accuracy, 0.2);
  // The plan drops ~20% of 6 clients x 5 rounds; with these seeds at least
  // one dropout must occur, and each surface must agree on the count.
  EXPECT_GT(result.total_dropped_clients, 0);
  EXPECT_EQ(result.curve.back().dropped_clients,
            result.total_dropped_clients);
  EXPECT_EQ(dropped_counter.value() - dropped_before,
            result.total_dropped_clients);
  EXPECT_EQ(result.total_straggler_clients, 0);
  EXPECT_EQ(result.total_crashed_clients, 0);

  // Survivor-only aggregation: the last round's FedGTA aggregation sets must
  // not contain any client that dropped in that round.
  const FailurePlan plan(sim.failure);
  auto* fedgta_strategy = dynamic_cast<FedGtaStrategy*>(strategy_ptr);
  ASSERT_NE(fedgta_strategy, nullptr);
  const auto& sets = fedgta_strategy->last_aggregation_sets();
  for (const auto& set : sets) {
    for (int member : set) {
      EXPECT_NE(plan.FateOf(sim.rounds, member), ClientFate::kDropout)
          << "dropped client " << member << " leaked into an aggregation set";
    }
  }
}

TEST(SimulationFailureTest, StragglersAndCrashesAreDiscarded) {
  FederatedDataset fed = MakeTinyFederated(/*num_clients=*/6, /*seed=*/5);
  StrategyOptions sopt;
  auto strategy = MakeStrategy("fedavg", sopt);
  SimulationConfig sim;
  sim.rounds = 4;
  sim.local_epochs = 2;
  sim.eval_every = 1;
  sim.seed = 99;
  sim.failure.straggler_rate = 0.2;
  sim.failure.crash_rate = 0.2;
  sim.failure.seed = 3;
  Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy), sim);
  const SimulationResult result = simulation.Run();
  EXPECT_EQ(result.curve.size(), 4u);
  EXPECT_GT(result.total_straggler_clients + result.total_crashed_clients, 0);
  EXPECT_EQ(result.total_dropped_clients, 0);
  // Training still converges on the survivors.
  EXPECT_GT(result.final_test_accuracy, 0.2);
}

// The ClientMetricsCache must not change what a client uploads: repeated
// metric computations (as happen across rounds) return identical moments
// and confidence, including under the FedGTA+feat extension whose feature
// block is the cached part.
TEST(ClientTest, FedGtaMetricsStableAcrossRepeatedCalls) {
  FederatedDataset fed = MakeTinyFederated();
  Client client(&fed.clients[0], TinyModel(), OptimizerConfig{}, 3);
  FedGtaOptions options;
  options.use_feature_moments = true;
  options.feature_moment_dims = 4;
  Counter& lp_calls =
      GlobalMetrics().GetCounter("phase.label_propagation.calls");
  const int64_t before_first = lp_calls.value();
  const ClientMetrics first = client.ComputeFedGtaMetrics(options);
  // First call propagates both soft labels and features (2 LP runs); later
  // calls reuse the cached feature block (1 LP run).
  EXPECT_EQ(lp_calls.value() - before_first, 2);
  client.TrainLocal(1);  // weights change; cached operator/features must not
  const int64_t before_again = lp_calls.value();
  const ClientMetrics again = client.ComputeFedGtaMetrics(options);
  EXPECT_EQ(lp_calls.value() - before_again, 1);
  EXPECT_EQ(first.moments.size(), again.moments.size());

  // A fresh client at the same weights reproduces the cached-path output.
  Client fresh(&fed.clients[0], TinyModel(), OptimizerConfig{}, 3);
  fresh.SetParams(client.GetParams());
  const ClientMetrics recomputed = fresh.ComputeFedGtaMetrics(options);
  ASSERT_EQ(again.moments.size(), recomputed.moments.size());
  EXPECT_DOUBLE_EQ(again.confidence, recomputed.confidence);
  for (size_t i = 0; i < again.moments.size(); ++i) {
    EXPECT_FLOAT_EQ(again.moments[i], recomputed.moments[i]) << "dim " << i;
  }
  // Changing a cached-key option (k) rebuilds rather than serving stale data.
  FedGtaOptions deeper = options;
  deeper.k = options.k + 2;
  const ClientMetrics rebuilt = fresh.ComputeFedGtaMetrics(deeper);
  EXPECT_NE(rebuilt.moments.size(), 0u);
  EXPECT_NE(rebuilt.moments, recomputed.moments);
}

}  // namespace
}  // namespace fedgta
