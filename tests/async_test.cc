// Async federation runtime (DESIGN.md §5i): AsyncUpdateQueue bookkeeping
// and admission rules, the pure straggler-delay schedule, the staleness
// discount, and the in-process oracle — Simulation::RunAsync must be
// bit-identical to the synchronous loop at tau = 0 and must stale-drop
// exactly the updates the FailurePlan predicts at tau > 0.

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/federated.h"
#include "fed/executor.h"
#include "fed/failure.h"
#include "fed/simulation.h"
#include "fed/strategy.h"
#include "graph/generator.h"

namespace fedgta {
namespace {

AsyncUpdate Update(int dispatch, int arrival, int client_id) {
  AsyncUpdate u;
  u.dispatch_round = dispatch;
  u.arrival_round = arrival;
  u.result.client_id = client_id;
  u.result.num_samples = 100;
  u.result.loss = 1.0;
  u.result.metrics.confidence = 0.8;
  return u;
}

TEST(AsyncQueueTest, WaitRuleBlocksUntilEveryDispatchIsAccounted) {
  AsyncUpdateQueue queue;
  queue.MarkDispatched(1, 2);
  queue.Push(Update(1, 1, /*client_id=*/0));

  std::atomic<bool> released{false};
  std::thread waiter([&queue, &released] {
    queue.WaitDispatchedThrough(1);
    released.store(true);
  });
  // One of round 1's two dispatches is still unaccounted: the waiter must
  // stay parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(released.load());
  queue.MarkAccounted(1);  // e.g. a dropout
  waiter.join();
  EXPECT_TRUE(released.load());

  // Rounds never dispatched — including rounds far past the last one — are
  // trivially satisfied once everything in flight is accounted.
  queue.WaitDispatchedThrough(100);
}

TEST(AsyncQueueTest, DrainAdmitsDedupsAndCountsStale) {
  AsyncUpdateQueue queue;
  queue.MarkDispatched(0, 1);
  queue.MarkDispatched(1, 2);
  queue.MarkDispatched(2, 2);
  // Client 5 delivered twice within the window: only the freshest survives.
  queue.Push(Update(/*dispatch=*/1, /*arrival=*/1, /*client_id=*/5));
  queue.Push(Update(/*dispatch=*/2, /*arrival=*/2, /*client_id=*/5));
  // Client 7's update is two rounds stale at the drain — over tau = 1.
  queue.Push(Update(/*dispatch=*/0, /*arrival=*/2, /*client_id=*/7));
  // Client 2's straggler arrival lies in the future: not drained yet.
  queue.Push(Update(/*dispatch=*/1, /*arrival=*/4, /*client_id=*/2));
  // Client 1 is fresh this round.
  queue.Push(Update(/*dispatch=*/2, /*arrival=*/2, /*client_id=*/1));
  EXPECT_EQ(queue.depth(), 5u);

  AsyncUpdateQueue::Drain drain =
      queue.DrainRound(/*round=*/2, /*tau=*/1, /*final_round=*/false);
  ASSERT_EQ(drain.admitted.size(), 2u);
  // Sorted by client id, freshest dispatch per client.
  EXPECT_EQ(drain.admitted[0].result.client_id, 1);
  EXPECT_EQ(drain.admitted[1].result.client_id, 5);
  EXPECT_EQ(drain.admitted[1].dispatch_round, 2);
  EXPECT_EQ(drain.superseded, 1);
  EXPECT_EQ(drain.stale_dropped, 1);
  EXPECT_EQ(drain.undelivered, 0);
  EXPECT_EQ(queue.depth(), 1u);  // client 2 still buffered

  // The run ends at round 3; client 2's arrival round 4 never comes. The
  // final drain classifies it as undelivered, not stale.
  AsyncUpdateQueue::Drain final_drain =
      queue.DrainRound(/*round=*/3, /*tau=*/1, /*final_round=*/true);
  EXPECT_EQ(final_drain.admitted.size(), 0u);
  EXPECT_EQ(final_drain.stale_dropped, 0);
  EXPECT_EQ(final_drain.undelivered, 1);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(StragglerDelayTest, PureAndWithinBounds) {
  FailureConfig config;
  config.straggler_rate = 0.5;
  config.seed = 0xFA11;
  const FailurePlan plan(config);
  const FailurePlan replay(config);
  bool saw_distinct = false;
  int first = -1;
  for (int round = 1; round <= 50; ++round) {
    for (int client = 0; client < 10; ++client) {
      const int delay = plan.StragglerDelay(round, client);
      EXPECT_GE(delay, 1);
      EXPECT_LE(delay, 3);
      // Pure in (seed, round, client): a second plan over the same config
      // sees the identical schedule.
      EXPECT_EQ(delay, replay.StragglerDelay(round, client));
      if (first == -1) first = delay;
      if (delay != first) saw_distinct = true;
    }
  }
  EXPECT_TRUE(saw_distinct) << "delay schedule is constant";

  FailureConfig reseeded = config;
  reseeded.seed = 0xBEEF;
  const FailurePlan other(reseeded);
  bool differs = false;
  for (int round = 1; round <= 50 && !differs; ++round) {
    for (int client = 0; client < 10 && !differs; ++client) {
      differs = other.StragglerDelay(round, client) !=
                plan.StragglerDelay(round, client);
    }
  }
  EXPECT_TRUE(differs) << "delay schedule ignores the seed";
}

TEST(StalenessDiscountTest, ExactNoOpAtZeroStaleness) {
  LocalResult result;
  result.num_samples = 137;
  result.metrics.confidence = 0.8125;
  const LocalResult before = result;
  ApplyStalenessDiscount(/*staleness=*/0, /*decay=*/0.5, &result);
  EXPECT_EQ(result.num_samples, before.num_samples);
  EXPECT_EQ(result.metrics.confidence, before.metrics.confidence);
}

TEST(StalenessDiscountTest, ScalesConfidenceAndFloorsSamples) {
  LocalResult result;
  result.num_samples = 100;
  result.metrics.confidence = 0.8;
  ApplyStalenessDiscount(/*staleness=*/2, /*decay=*/0.5, &result);
  EXPECT_DOUBLE_EQ(result.metrics.confidence, 0.8 * 0.25);
  EXPECT_EQ(result.num_samples, 25);

  // The data-size weight never vanishes: a deeply stale update still
  // carries at least one sample.
  LocalResult tiny;
  tiny.num_samples = 2;
  tiny.metrics.confidence = 0.5;
  ApplyStalenessDiscount(/*staleness=*/10, /*decay=*/0.25, &tiny);
  EXPECT_EQ(tiny.num_samples, 1);
  EXPECT_GT(tiny.metrics.confidence, 0.0);
}

// --- In-process oracle -----------------------------------------------------

FederatedDataset MakeTinyFederated(int num_clients, uint64_t seed) {
  SbmConfig cfg;
  cfg.num_nodes = 400;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.85;
  cfg.regions_per_class = 2;
  Rng rng(seed);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Dataset ds;
  ds.name = "tiny";
  ds.graph = std::move(lg.graph);
  ds.labels = std::move(lg.labels);
  ds.num_classes = 4;
  FeatureConfig fcfg;
  fcfg.dim = 8;
  fcfg.noise_scale = 1.5f;
  ds.features = GenerateFeatures(ds.labels, 4, fcfg, rng);
  StratifiedSplit(ds.labels, 4, 0.3, 0.2, rng, &ds.train_idx, &ds.val_idx,
                  &ds.test_idx);
  SplitConfig split;
  split.method = SplitMethod::kLouvain;
  split.num_clients = num_clients;
  Rng srng(seed ^ 7);
  return BuildFederatedDataset(std::move(ds), split, srng);
}

ModelConfig TinyModel() {
  ModelConfig cfg;
  cfg.type = ModelType::kSgc;
  cfg.k = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

SimulationConfig BaseSimConfig() {
  SimulationConfig sim;
  sim.rounds = 4;
  sim.local_epochs = 2;
  sim.eval_every = 1;
  sim.seed = 99;
  sim.failure.straggler_rate = 0.3;
  sim.failure.dropout_rate = 0.1;
  sim.failure.seed = 3;
  return sim;
}

SimulationResult RunWith(const SimulationConfig& sim) {
  FederatedDataset fed = MakeTinyFederated(/*num_clients=*/6, /*seed=*/5);
  StrategyOptions sopt;
  auto strategy = MakeStrategy("fedgta", sopt);
  Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy), sim);
  return simulation.Run();
}

TEST(AsyncSimulationTest, TauZeroIsBitIdenticalToSynchronousRun) {
  const SimulationConfig sync_sim = BaseSimConfig();
  const SimulationResult sync_run = RunWith(sync_sim);

  SimulationConfig async_sim = BaseSimConfig();
  async_sim.async = true;
  async_sim.staleness_tau = 0;
  const SimulationResult async_run = RunWith(async_sim);

  // The whole deterministic surface must match bit for bit: at tau = 0 the
  // wait rule is the full barrier and every admission decision coincides
  // with the synchronous survivor filter.
  EXPECT_EQ(async_run.best_test_accuracy, sync_run.best_test_accuracy);
  EXPECT_EQ(async_run.final_test_accuracy, sync_run.final_test_accuracy);
  EXPECT_EQ(async_run.total_upload_floats, sync_run.total_upload_floats);
  EXPECT_EQ(async_run.total_download_floats, sync_run.total_download_floats);
  EXPECT_EQ(async_run.total_dropped_clients, sync_run.total_dropped_clients);
  EXPECT_EQ(async_run.total_straggler_clients,
            sync_run.total_straggler_clients);
  EXPECT_EQ(async_run.total_crashed_clients, sync_run.total_crashed_clients);
  ASSERT_EQ(async_run.curve.size(), sync_run.curve.size());
  for (size_t i = 0; i < sync_run.curve.size(); ++i) {
    const RoundStats& a = async_run.curve[i];
    const RoundStats& s = sync_run.curve[i];
    EXPECT_EQ(a.round, s.round);
    EXPECT_EQ(a.test_accuracy, s.test_accuracy) << "round " << a.round;
    EXPECT_EQ(a.val_accuracy, s.val_accuracy) << "round " << a.round;
    EXPECT_EQ(a.train_loss, s.train_loss) << "round " << a.round;
    EXPECT_EQ(a.upload_floats, s.upload_floats);
    EXPECT_EQ(a.download_floats, s.download_floats);
    EXPECT_EQ(a.dropped_clients, s.dropped_clients);
    EXPECT_EQ(a.straggler_clients, s.straggler_clients);
    EXPECT_EQ(a.crashed_clients, s.crashed_clients);
  }
  // The run saw actual straggler traffic (otherwise this test is vacuous).
  EXPECT_GT(sync_run.total_straggler_clients, 0);
  // At tau = 0 every straggler update that arrives within the run is stale.
  EXPECT_GT(async_run.total_stale_dropped_updates, 0);
}

TEST(AsyncSimulationTest, StaleDropsMatchThePlanSchedule) {
  SimulationConfig sim;
  sim.rounds = 5;
  sim.local_epochs = 1;
  sim.eval_every = 5;
  sim.seed = 42;
  sim.failure.straggler_rate = 0.4;
  sim.failure.seed = 11;
  sim.async = true;
  sim.staleness_tau = 2;

  const int n_clients = 6;
  const FailurePlan plan(sim.failure);
  // Full participation, stragglers only: the admission outcome of every
  // dispatched update is a closed-form function of the plan. The drain at
  // round t sees the round-t healthy updates plus every straggler whose
  // r + delay lands on t; delay > tau is a stale drop, an arrival past the
  // end of the run is undelivered, and among a client's admissible updates
  // in one drain only the freshest counts as admitted (rest superseded).
  int64_t expect_admitted = 0;
  int64_t expect_stale = 0;
  for (int t = 1; t <= sim.rounds; ++t) {
    std::map<int, int> freshest;  // client -> freshest admissible dispatch
    for (int client = 0; client < n_clients; ++client) {
      if (plan.FateOf(t, client) == ClientFate::kHealthy) {
        freshest[client] = t;
      }
    }
    for (int r = 1; r <= t; ++r) {
      for (int client = 0; client < n_clients; ++client) {
        if (plan.FateOf(r, client) != ClientFate::kStraggler) continue;
        const int delay = plan.StragglerDelay(r, client);
        if (r + delay != t) continue;
        if (delay > sim.staleness_tau) {
          ++expect_stale;
          continue;
        }
        auto [it, inserted] = freshest.emplace(client, r);
        if (!inserted && it->second < r) it->second = r;
      }
    }
    expect_admitted += static_cast<int64_t>(freshest.size());
  }
  EXPECT_GT(expect_stale, 0) << "seed produced no over-tau stragglers";

  FederatedDataset fed = MakeTinyFederated(n_clients, /*seed=*/5);
  StrategyOptions sopt;
  auto strategy = MakeStrategy("fedavg", sopt);
  Simulation simulation(&fed, TinyModel(), OptimizerConfig{},
                        std::move(*strategy), sim);
  const SimulationResult result = simulation.Run();

  EXPECT_EQ(result.total_admitted_updates, expect_admitted);
  EXPECT_EQ(result.total_stale_dropped_updates, expect_stale);
  EXPECT_GT(result.final_test_accuracy, 0.2);
}

}  // namespace
}  // namespace fedgta
