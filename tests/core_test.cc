#include <cmath>

#include <gtest/gtest.h>

#include "core/fedgta_metrics.h"
#include "core/label_propagation.h"
#include "core/moments.h"
#include "core/similarity.h"
#include "core/smoothing_confidence.h"
#include "graph/generator.h"
#include "graph/normalized_adjacency.h"
#include "linalg/ops.h"

namespace fedgta {
namespace {

Graph PathGraph(int n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back({i, static_cast<NodeId>(i + 1)});
  return Graph::FromEdges(n, edges);
}

// Uniform soft labels over c classes for n nodes.
Matrix UniformSoftLabels(int n, int c) {
  return Matrix(n, c, 1.0f / static_cast<float>(c));
}

// One-hot soft labels, class = node index % c.
Matrix SharpSoftLabels(int n, int c) {
  Matrix y(n, c);
  for (int i = 0; i < n; ++i) y(i, i % c) = 1.0f;
  return y;
}

TEST(LabelPropagationOperatorTest, EntriesAreInverseSqrtDegrees) {
  Graph g = PathGraph(3);  // degrees 1,2,1 -> d̃ = 2,3,2
  const CsrMatrix op = LabelPropagationOperator(g);
  const Matrix dense = op.ToDense();
  EXPECT_NEAR(dense(0, 1), 1.0f / std::sqrt(6.0f), 1e-6f);
  EXPECT_NEAR(dense(1, 0), 1.0f / std::sqrt(6.0f), 1e-6f);
  EXPECT_FLOAT_EQ(dense(0, 0), 0.0f);  // no diagonal
  EXPECT_FLOAT_EQ(dense(0, 2), 0.0f);
}

TEST(NonParamLpTest, AlphaOneIsIdentity) {
  Graph g = PathGraph(5);
  const CsrMatrix op = LabelPropagationOperator(g);
  const Matrix y0 = SharpSoftLabels(5, 2);
  const auto hops = NonParamLabelPropagation(op, y0, /*alpha=*/1.0f, 3);
  ASSERT_EQ(hops.size(), 3u);
  for (const Matrix& hop : hops) EXPECT_TRUE(hop.AllClose(y0));
}

TEST(NonParamLpTest, MatchesManualRecursion) {
  Graph g = PathGraph(4);
  const CsrMatrix op = LabelPropagationOperator(g);
  Matrix y0(4, 2);
  y0(0, 0) = 1.0f;
  y0(1, 1) = 1.0f;
  y0(2, 0) = 0.5f;
  y0(2, 1) = 0.5f;
  y0(3, 0) = 1.0f;
  const float alpha = 0.5f;
  const auto hops = NonParamLabelPropagation(op, y0, alpha, 2);

  // Manual Eq. (3): Y^l = α Y^0 + (1-α) Op Y^{l-1}.
  Matrix manual = y0;
  for (int l = 0; l < 2; ++l) {
    Matrix prop = op * manual;
    manual = y0;
    manual *= alpha;
    manual.Axpy(1.0f - alpha, prop);
    EXPECT_TRUE(hops[static_cast<size_t>(l)].AllClose(manual, 1e-5f));
  }
}

TEST(NonParamLpTest, PropagationSpreadsInformation) {
  Graph g = PathGraph(6);
  const CsrMatrix op = LabelPropagationOperator(g);
  Matrix y0(6, 2);
  y0(0, 0) = 1.0f;  // only node 0 is labeled class 0
  for (int i = 1; i < 6; ++i) y0(i, 1) = 1.0f;
  const auto hops = NonParamLabelPropagation(op, y0, 0.5f, 4);
  // Node 2 (two hops away) gains class-0 mass only after 2+ hops.
  EXPECT_FLOAT_EQ(hops[0](2, 0), 0.5f * y0(2, 0));
  EXPECT_GT(hops[3](2, 0), hops[0](2, 0));
}

TEST(SmoothingConfidenceTest, SharpBeatsUniform) {
  Graph g = PathGraph(10);
  const auto degrees = SelfLoopDegrees(g);
  const double sharp = SmoothingConfidence(SharpSoftLabels(10, 4), degrees);
  const double uniform = SmoothingConfidence(UniformSoftLabels(10, 4), degrees);
  EXPECT_GT(sharp, uniform)
      << "lower-entropy predictions must yield higher confidence (Eq. 4)";
}

TEST(SmoothingConfidenceTest, SharpPredictionsHitTheoreticalMax) {
  Graph g = PathGraph(4);
  const auto degrees = SelfLoopDegrees(g);
  // Sharp predictions: every entry contributes exactly e^{-1}.
  const double h = SmoothingConfidence(SharpSoftLabels(4, 3), degrees);
  double expected = 0.0;
  for (float d : degrees) expected += d * 3.0 * std::exp(-1.0);
  EXPECT_NEAR(h, expected, 1e-6);
}

TEST(SmoothingConfidenceTest, DegreeWeighting) {
  // Same predictions, but degrees double: H doubles.
  Matrix y = SharpSoftLabels(4, 2);
  const std::vector<float> d1{1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<float> d2{2.0f, 2.0f, 2.0f, 2.0f};
  EXPECT_NEAR(SmoothingConfidence(y, d2), 2.0 * SmoothingConfidence(y, d1),
              1e-9);
}

TEST(MomentsTest, ShapeIsHopsTimesOrderTimesClasses) {
  std::vector<Matrix> hops{UniformSoftLabels(5, 3), UniformSoftLabels(5, 3)};
  const auto m = MixedMoments(hops, 4);
  EXPECT_EQ(m.size(), 2u * 4u * 3u);
}

TEST(MomentsTest, FirstMomentOfUniformIsZero) {
  // Uniform rows: every entry equals the row mean, so all central moments
  // vanish.
  std::vector<Matrix> hops{UniformSoftLabels(6, 4)};
  const auto m = MixedMoments(hops, 3);
  for (float v : m) EXPECT_NEAR(v, 0.0f, 1e-7f);
}

TEST(MomentsTest, MatchesManualComputation) {
  Matrix y(2, 2);
  y(0, 0) = 0.8f;
  y(0, 1) = 0.2f;
  y(1, 0) = 0.4f;
  y(1, 1) = 0.6f;
  const auto m = MixedMoments({y}, 2);
  ASSERT_EQ(m.size(), 4u);
  // Order 1, class 0: mean over nodes of (y_i0 - mean_i) = ((0.8-0.5)+(0.4-0.5))/2.
  EXPECT_NEAR(m[0], (0.3f - 0.1f) / 2.0f, 1e-6f);
  // Order 1, class 1: symmetric negative.
  EXPECT_NEAR(m[1], -m[0], 1e-6f);
  // Order 2, class 0: ((0.3)^2 + (-0.1)^2)/2.
  EXPECT_NEAR(m[2], (0.09f + 0.01f) / 2.0f, 1e-6f);
}

TEST(MomentsTest, DistinguishesLabelDistributions) {
  // Clients dominated by different classes produce dissimilar moments;
  // clients with the same dominant class produce similar moments.
  auto soft = [](int n, int c, int dominant) {
    Matrix y(n, c, 0.05f);
    for (int i = 0; i < n; ++i) y(i, dominant) = 0.9f;
    return y;
  };
  const auto a = MixedMoments({soft(50, 4, 0)}, 3);
  const auto b = MixedMoments({soft(60, 4, 0)}, 3);
  const auto c = MixedMoments({soft(50, 4, 2)}, 3);
  EXPECT_GT(CosineSimilarity(a, b), 0.99);
  EXPECT_LT(CosineSimilarity(a, c), 0.5);
}

TEST(SimilarityTest, MatrixIsSymmetricWithUnitDiagonal) {
  std::vector<std::vector<float>> moments{
      {1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 1.0f}};
  const Matrix sim = MomentSimilarityMatrix(moments, {0, 1, 2});
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(sim(i, i), 1.0f);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(sim(i, j), sim(j, i));
  }
  EXPECT_NEAR(sim(0, 1), 0.0f, 1e-6f);
  EXPECT_NEAR(sim(0, 2), 1.0f / std::sqrt(2.0f), 1e-6f);
}

TEST(SimilarityTest, NonParticipantsExcluded) {
  std::vector<std::vector<float>> moments{{1.0f, 0.0f}, {}, {1.0f, 0.1f}};
  const auto sets = BuildAggregationSets(moments, {0, 2}, 0.5);
  EXPECT_TRUE(sets[1].empty());
  EXPECT_EQ(sets[0].front(), 0);
  EXPECT_EQ(sets[2].front(), 2);
  // 0 and 2 are nearly parallel: grouped.
  EXPECT_EQ(sets[0].size(), 2u);
}

TEST(SimilarityTest, ThresholdControlsSetSize) {
  std::vector<std::vector<float>> moments{
      {1.0f, 0.0f}, {0.9f, 0.1f}, {0.0f, 1.0f}};
  const std::vector<int> participants{0, 1, 2};
  const auto strict = BuildAggregationSets(moments, participants, 0.99);
  const auto loose = BuildAggregationSets(moments, participants, -1.0);
  EXPECT_EQ(strict[0].size(), 2u);  // {0, 1}
  EXPECT_EQ(loose[0].size(), 3u);   // everyone
  EXPECT_EQ(strict[2].size(), 1u);  // {2} alone
}

TEST(SimilarityTest, SelfAlwaysIncluded) {
  std::vector<std::vector<float>> moments{{1.0f, 0.0f}, {-1.0f, 0.0f}};
  const auto sets = BuildAggregationSets(moments, {0, 1}, 0.9);
  EXPECT_EQ(sets[0], std::vector<int>{0});
  EXPECT_EQ(sets[1], std::vector<int>{1});
}

TEST(ComputeClientMetricsTest, EndToEndOnGeneratedGraph) {
  SbmConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  Rng rng(31);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Matrix logits(80, 4);
  logits.GaussianInit(rng, 1.0f);
  FedGtaOptions options;
  options.k = 3;
  options.moment_order = 2;
  const ClientMetrics metrics =
      ComputeClientMetrics(lg.graph, logits, options);
  EXPECT_GT(metrics.confidence, 0.0);
  EXPECT_EQ(metrics.moments.size(), 3u * 2u * 4u);
  for (float v : metrics.moments) EXPECT_TRUE(std::isfinite(v));
}

TEST(ComputeClientMetricsTest, SharperLogitsMoreConfident) {
  SbmConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_classes = 4;
  Rng rng(33);
  LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Matrix soft_logits(80, 4);
  soft_logits.GaussianInit(rng, 0.1f);
  Matrix sharp_logits = soft_logits;
  sharp_logits *= 50.0f;
  FedGtaOptions options;
  EXPECT_GT(ComputeClientMetrics(lg.graph, sharp_logits, options).confidence,
            ComputeClientMetrics(lg.graph, soft_logits, options).confidence);
}

TEST(FedGtaAggregateTest, SingletonSetKeepsOwnParams) {
  std::vector<ClientMetrics> metrics(2);
  metrics[0].confidence = 1.0;
  metrics[0].moments = {1.0f, 0.0f};
  metrics[1].confidence = 1.0;
  metrics[1].moments = {-1.0f, 0.0f};
  std::vector<std::vector<float>> params{{1.0f, 1.0f}, {5.0f, 5.0f}};
  std::vector<int64_t> sizes{10, 10};
  std::vector<std::vector<float>> personalized(2);
  FedGtaOptions options;
  options.epsilon = 0.9;
  FedGtaAggregate(metrics, params, sizes, {0, 1}, options, &personalized);
  EXPECT_FLOAT_EQ(personalized[0][0], 1.0f);
  EXPECT_FLOAT_EQ(personalized[1][0], 5.0f);
}

TEST(FedGtaAggregateTest, ConfidenceWeightsAggregation) {
  std::vector<ClientMetrics> metrics(2);
  metrics[0].confidence = 3.0;
  metrics[0].moments = {1.0f, 0.0f};
  metrics[1].confidence = 1.0;
  metrics[1].moments = {1.0f, 0.01f};
  std::vector<std::vector<float>> params{{0.0f}, {4.0f}};
  std::vector<int64_t> sizes{10, 10};
  std::vector<std::vector<float>> personalized(2);
  FedGtaOptions options;
  options.epsilon = 0.5;
  FedGtaAggregate(metrics, params, sizes, {0, 1}, options, &personalized);
  // Weight of client 1 = 1/4 -> 0*3/4 + 4*1/4 = 1.
  EXPECT_NEAR(personalized[0][0], 1.0f, 1e-5f);
  EXPECT_NEAR(personalized[1][0], 1.0f, 1e-5f);
}

TEST(FedGtaAggregateTest, DisableMomentsUsesAllParticipants) {
  std::vector<ClientMetrics> metrics(3);
  for (int i = 0; i < 3; ++i) {
    metrics[static_cast<size_t>(i)].confidence = 1.0;
    // Orthogonal moments: with moments enabled everyone would be alone.
    metrics[static_cast<size_t>(i)].moments = {i == 0 ? 1.0f : 0.0f,
                                               i == 1 ? 1.0f : 0.0f,
                                               i == 2 ? 1.0f : 0.0f};
  }
  std::vector<std::vector<float>> params{{3.0f}, {6.0f}, {9.0f}};
  std::vector<int64_t> sizes{1, 1, 1};
  std::vector<std::vector<float>> personalized(3);
  FedGtaOptions options;
  options.epsilon = 0.9;
  options.disable_moments = true;
  std::vector<std::vector<int>> sets;
  FedGtaAggregate(metrics, params, sizes, {0, 1, 2}, options, &personalized,
                  &sets);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sets[static_cast<size_t>(i)].size(), 3u);
    EXPECT_NEAR(personalized[static_cast<size_t>(i)][0], 6.0f, 1e-5f);
  }
}

TEST(FedGtaAggregateTest, DisableConfidenceUsesTrainSizes) {
  std::vector<ClientMetrics> metrics(2);
  metrics[0].confidence = 100.0;  // would dominate if enabled
  metrics[0].moments = {1.0f};
  metrics[1].confidence = 1.0;
  metrics[1].moments = {1.0f};
  std::vector<std::vector<float>> params{{0.0f}, {4.0f}};
  std::vector<int64_t> sizes{1, 3};
  std::vector<std::vector<float>> personalized(2);
  FedGtaOptions options;
  options.epsilon = 0.5;
  options.disable_confidence = true;
  FedGtaAggregate(metrics, params, sizes, {0, 1}, options, &personalized);
  // Size weights: 0*1/4 + 4*3/4 = 3.
  EXPECT_NEAR(personalized[0][0], 3.0f, 1e-5f);
}

TEST(FedGtaAggregateTest, PartialParticipationLeavesOthersUntouched) {
  std::vector<ClientMetrics> metrics(3);
  metrics[0].confidence = 1.0;
  metrics[0].moments = {1.0f};
  metrics[2].confidence = 1.0;
  metrics[2].moments = {1.0f};
  std::vector<std::vector<float>> params{{2.0f}, {}, {4.0f}};
  std::vector<int64_t> sizes{1, 1, 1};
  std::vector<std::vector<float>> personalized{
      {9.0f}, {7.0f}, {9.0f}};
  FedGtaOptions options;
  options.epsilon = 0.5;
  FedGtaAggregate(metrics, params, sizes, {0, 2}, options, &personalized);
  EXPECT_NEAR(personalized[0][0], 3.0f, 1e-5f);
  EXPECT_NEAR(personalized[2][0], 3.0f, 1e-5f);
  EXPECT_FLOAT_EQ(personalized[1][0], 7.0f) << "non-participant untouched";
}

}  // namespace
}  // namespace fedgta
