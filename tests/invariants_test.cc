// Cross-module mathematical invariants: degenerate-graph equivalences,
// modularity guarantees, and moment properties that tie the substrates
// together.

#include <cmath>

#include <gtest/gtest.h>

#include "core/moments.h"
#include "gnn/factory.h"
#include "gnn/gcn.h"
#include "graph/generator.h"
#include "graph/metrics.h"
#include "graph/normalized_adjacency.h"
#include "nn/mlp.h"
#include "partition/louvain.h"
#include "partition/metis.h"

namespace fedgta {
namespace {

TEST(DegenerateGraphTest, EdgelessNormalizedAdjacencyIsIdentity) {
  const Graph g = Graph::FromEdges(5, {});
  const Matrix dense = NormalizedAdjacency(g, 0.5f).ToDense();
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(dense(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(DegenerateGraphTest, GcnOnEdgelessGraphEqualsMlp) {
  // With Â = I the GCN collapses to an MLP; verify by transplanting the
  // GCN's weights into an MLP of the same architecture.
  const Graph g = Graph::FromEdges(12, {});
  Rng frng(1);
  Matrix features(12, 6);
  features.GaussianInit(frng, 1.0f);

  GcnModel gcn(/*num_layers=*/2, /*hidden=*/8, /*dropout=*/0.0f, /*r=*/0.5f);
  ModelInput input;
  input.graph_full = &g;
  input.graph_train = &g;
  input.features = &features;
  input.num_classes = 3;
  Rng rng(2);
  gcn.Prepare(input, rng);

  MlpConfig cfg;
  cfg.in_dim = 6;
  cfg.hidden_dim = 8;
  cfg.out_dim = 3;
  cfg.num_layers = 2;
  cfg.dropout = 0.0f;
  Rng mrng(3);
  Mlp mlp(cfg, mrng);
  UnflattenParams(FlattenParams(gcn.Params()), mlp.Params());

  const Matrix gcn_out = gcn.Forward(false);
  const Matrix mlp_out = mlp.Forward(features, false);
  EXPECT_TRUE(gcn_out.AllClose(mlp_out, 1e-4f));
}

TEST(DegenerateGraphTest, SgcOnEdgelessGraphIsLinearOnRawFeatures) {
  const Graph g = Graph::FromEdges(10, {});
  Rng frng(4);
  Matrix features(10, 4);
  features.GaussianInit(frng, 1.0f);
  ModelConfig cfg;
  cfg.type = ModelType::kSgc;
  cfg.k = 5;
  cfg.dropout = 0.0f;
  auto model = MakeModel(cfg);
  ModelInput input;
  input.graph_full = &g;
  input.graph_train = &g;
  input.features = &features;
  input.num_classes = 2;
  Rng rng(5);
  model->Prepare(input, rng);
  // Scaling the features scales the logits affinely (pure linear model on
  // X^k = X when à = I).
  const Matrix y1 = model->Forward(false);
  Matrix zero(10, 4);
  const Matrix* saved = input.features;
  (void)saved;
  // Affine check: f(2x) - f(0) == 2 (f(x) - f(0)) requires re-Prepare with
  // scaled features; instead check rows with identical features map to
  // identical logits.
  Matrix features_dup = features;
  for (int64_t j = 0; j < 4; ++j) features_dup(1, j) = features(0, j);
  auto model2 = MakeModel(cfg);
  ModelInput input2 = input;
  input2.features = &features_dup;
  Rng rng2(5);
  model2->Prepare(input2, rng2);
  const Matrix y2 = model2->Forward(false);
  for (int64_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(y2(0, j), y2(1, j), 1e-5f);
  }
  (void)y1;
}

TEST(ModularityTest, LouvainBeatsTrivialPartitions) {
  SbmConfig cfg;
  cfg.num_nodes = 600;
  cfg.num_classes = 4;
  cfg.avg_degree = 8.0;
  cfg.homophily = 0.85;
  Rng rng(7);
  const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Rng lrng(8);
  const std::vector<int> communities = LouvainCommunities(lg.graph, lrng);
  const double q_louvain = Modularity(lg.graph, communities);
  const std::vector<int> all_one(600, 0);
  std::vector<int> singletons(600);
  for (int i = 0; i < 600; ++i) singletons[static_cast<size_t>(i)] = i;
  EXPECT_GT(q_louvain, Modularity(lg.graph, all_one));
  EXPECT_GT(q_louvain, Modularity(lg.graph, singletons));
  // And at least as good as the planted ground truth is a strong ask;
  // Louvain should land within a modest factor of it.
  EXPECT_GT(q_louvain, 0.8 * Modularity(lg.graph, lg.labels));
}

TEST(ModularityTest, MetisRefinementNeverProducesWorseCutThanInitialRandom) {
  SbmConfig cfg;
  cfg.num_nodes = 800;
  cfg.num_classes = 4;
  cfg.avg_degree = 8.0;
  Rng rng(9);
  const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
  Rng prng(10);
  const std::vector<int> parts = MetisPartition(lg.graph, 8, prng);
  // 30 random assignments: Metis should beat all of them.
  Rng rrng(11);
  const int64_t metis_cut = EdgeCut(lg.graph, parts);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> random_parts(800);
    for (int& p : random_parts) p = static_cast<int>(rrng.UniformInt(0, 7));
    EXPECT_LT(metis_cut, EdgeCut(lg.graph, random_parts));
  }
}

TEST(MomentInvariantTest, EvenOrderMomentsNonNegative) {
  Rng rng(12);
  std::vector<Matrix> hops;
  Matrix y(40, 5);
  y.GaussianInit(rng, 1.0f);
  RowSoftmaxInPlace(&y);
  hops.push_back(y);
  const auto moments = MixedMoments(hops, 4);
  // Layout: order-major per hop: [o1 c..., o2 c..., o3 c..., o4 c...].
  for (int order = 2; order <= 4; order += 2) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_GE(moments[static_cast<size_t>((order - 1) * 5 + c)], 0.0f)
          << "order " << order << " class " << c;
    }
  }
}

TEST(MomentInvariantTest, PermutingNodesLeavesMomentsUnchanged) {
  Rng rng(13);
  Matrix y(30, 4);
  y.GaussianInit(rng, 1.0f);
  RowSoftmaxInPlace(&y);
  Matrix shuffled(30, 4);
  std::vector<int> perm(30);
  for (int i = 0; i < 30; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(perm);
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 4; ++j) {
      shuffled(i, j) = y(perm[static_cast<size_t>(i)], j);
    }
  }
  const auto a = MixedMoments({y}, 3);
  const auto b = MixedMoments({shuffled}, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5f) << "moments must be node-order invariant";
  }
}

TEST(HomophilyCalibrationTest, GeneratorTracksTargetAcrossRange) {
  // The backbone-compensated sampler should land within ~0.12 of the
  // requested homophily across the usable range (same-class collisions of
  // random edges put a floor near 1/classes).
  for (double target : {0.5, 0.7, 0.9}) {
    SbmConfig cfg;
    cfg.num_nodes = 3000;
    cfg.num_classes = 8;
    cfg.avg_degree = 10.0;
    cfg.homophily = target;
    cfg.regions_per_class = 3;
    Rng rng(static_cast<uint64_t>(target * 100));
    const LabeledGraph lg = GeneratePlantedPartition(cfg, rng);
    const double measured = EdgeHomophily(lg.graph, lg.labels);
    EXPECT_NEAR(measured, target, 0.12) << "target " << target;
  }
}

}  // namespace
}  // namespace fedgta
