#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace fedgta {
namespace serialize {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// > 64 MiB of floats: the size class of a large-model weight upload. The
// framer ships Encode()d buffers verbatim, so this is also the wire-payload
// large-message test.
std::vector<float> BigPayload() {
  constexpr size_t kCount = 17u << 20;  // 17M floats = 68 MiB
  std::vector<float> v(kCount);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i % 9973) * 0.25f - 100.0f;
  }
  return v;
}

TEST(SerializeTest, LargePayloadRoundTripsThroughBuffer) {
  const std::vector<float> big = BigPayload();
  Writer writer;
  writer.WriteU64(big.size());
  writer.WriteFloatVec(big);
  writer.WriteString("trailer");

  std::string encoded = writer.Encode();
  EXPECT_GT(encoded.size(), 64u << 20);
  Result<Reader> reader = Reader::FromBuffer(std::move(encoded));
  ASSERT_TRUE(reader.ok()) << reader.status();

  uint64_t count = 0;
  std::vector<float> got;
  std::string trailer;
  ASSERT_TRUE(reader->ReadU64(&count).ok());
  ASSERT_TRUE(reader->ReadFloatVec(&got).ok());
  ASSERT_TRUE(reader->ReadString(&trailer).ok());
  EXPECT_TRUE(reader->AtEnd());
  EXPECT_EQ(count, big.size());
  EXPECT_EQ(trailer, "trailer");
  EXPECT_EQ(got, big);
}

TEST(SerializeTest, LargePayloadRoundTripsThroughFile) {
  const std::vector<float> big = BigPayload();
  Writer writer;
  writer.WriteFloatVec(big);
  const std::string path = TempPath("fedgta_serialize_big.bin");
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  Result<Reader> reader = Reader::FromFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  std::vector<float> got;
  ASSERT_TRUE(reader->ReadFloatVec(&got).ok());
  EXPECT_TRUE(reader->AtEnd());
  EXPECT_EQ(got, big);
  std::filesystem::remove(path);
}

TEST(SerializeTest, EveryPrefixTruncationFailsCleanly) {
  Writer writer;
  writer.WriteU32(7);
  writer.WriteString("partial read probe");
  const std::vector<float> floats = {1.0f, 2.0f, 3.0f};
  writer.WriteFloatVec(floats);
  const std::string encoded = writer.Encode();

  // A stream delivered byte-at-a-time can be cut anywhere; every prefix
  // must validate as an error Status, never crash or half-load.
  for (size_t len = 0; len < encoded.size(); ++len) {
    Result<Reader> reader = Reader::FromBuffer(encoded.substr(0, len));
    EXPECT_FALSE(reader.ok()) << "prefix of " << len << " bytes validated";
  }
  EXPECT_TRUE(Reader::FromBuffer(encoded).ok());
}

TEST(SerializeTest, EverySingleByteFlipIsDetected) {
  Writer writer;
  writer.WriteI64(-42);
  writer.WriteString("integrity");
  const std::string encoded = writer.Encode();

  // Magic/version/size corruption is caught structurally, payload and CRC
  // corruption by the checksum. The only bytes allowed to validate are the
  // header struct's alignment padding — and those must decode to the exact
  // original content.
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string corrupted = encoded;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    Result<Reader> reader = Reader::FromBuffer(std::move(corrupted));
    if (!reader.ok()) continue;
    int64_t value = 0;
    std::string text;
    ASSERT_TRUE(reader->ReadI64(&value).ok()) << "flip at byte " << i;
    ASSERT_TRUE(reader->ReadString(&text).ok()) << "flip at byte " << i;
    EXPECT_TRUE(reader->AtEnd()) << "flip at byte " << i;
    EXPECT_EQ(value, -42) << "flip at byte " << i << " altered content";
    EXPECT_EQ(text, "integrity") << "flip at byte " << i << " altered content";
  }
}

TEST(SerializeTest, OverReadIsOutOfRangeAndLeavesOutputUntouched) {
  Writer writer;
  writer.WriteU32(5);
  Result<Reader> reader = Reader::FromBuffer(writer.Encode());
  ASSERT_TRUE(reader.ok());
  uint32_t small = 0;
  ASSERT_TRUE(reader->ReadU32(&small).ok());
  EXPECT_EQ(small, 5u);
  uint64_t big = 0xABCDu;
  EXPECT_EQ(reader->ReadU64(&big).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(big, 0xABCDu);
}

TEST(SerializeTest, VectorLengthBeyondBufferIsRejected) {
  // Handcraft a payload whose float-vec claims more elements than the
  // buffer holds; the length check must fire before any allocation.
  Writer writer;
  writer.WriteU64(1ull << 60);  // absurd element count, nothing follows
  Result<Reader> reader = Reader::FromBuffer(writer.Encode());
  ASSERT_TRUE(reader.ok());
  std::vector<float> v;
  EXPECT_FALSE(reader->ReadFloatVec(&v).ok());
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace serialize
}  // namespace fedgta
