#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"

namespace fedgta {
namespace {

// Finite-difference check of d(loss)/d(param) against analytic gradients.
// `loss_fn` must run forward+backward (with grads zeroed first) and return
// the scalar loss.
void CheckGradients(const std::vector<ParamRef>& params,
                    const std::function<double()>& loss_fn,
                    float tolerance = 2e-2f) {
  (void)loss_fn();  // populate analytic gradients
  std::vector<float> analytic = FlattenGrads(params);
  std::vector<float> flat = FlattenParams(params);
  const float eps = 1e-2f;
  int checked = 0;
  for (size_t i = 0; i < flat.size(); i += std::max<size_t>(1, flat.size() / 40)) {
    const float saved = flat[i];
    flat[i] = saved + eps;
    UnflattenParams(flat, params);
    const double loss_plus = loss_fn();
    flat[i] = saved - eps;
    UnflattenParams(flat, params);
    const double loss_minus = loss_fn();
    flat[i] = saved;
    UnflattenParams(flat, params);
    const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "param index " << i;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(ParametersTest, FlattenUnflattenRoundTrip) {
  Rng rng(1);
  Matrix a(2, 3), ga(2, 3), b(1, 4), gb(1, 4);
  a.GaussianInit(rng, 1.0f);
  b.GaussianInit(rng, 1.0f);
  std::vector<ParamRef> params{{&a, &ga}, {&b, &gb}};
  EXPECT_EQ(ParamCount(params), 10);
  const std::vector<float> flat = FlattenParams(params);
  EXPECT_EQ(flat.size(), 10u);
  EXPECT_FLOAT_EQ(flat[0], a(0, 0));
  EXPECT_FLOAT_EQ(flat[6], b(0, 0));

  std::vector<float> modified = flat;
  for (float& v : modified) v += 1.0f;
  UnflattenParams(modified, params);
  EXPECT_FLOAT_EQ(a(0, 0), flat[0] + 1.0f);
  EXPECT_FLOAT_EQ(b(0, 3), flat[9] + 1.0f);

  ga.Fill(2.0f);
  gb.Fill(3.0f);
  const std::vector<float> grads = FlattenGrads(params);
  EXPECT_FLOAT_EQ(grads[0], 2.0f);
  EXPECT_FLOAT_EQ(grads[9], 3.0f);
  ZeroGrads(params);
  EXPECT_FLOAT_EQ(ga(0, 0), 0.0f);
}

TEST(LinearTest, ForwardComputesAffine) {
  Rng rng(2);
  Linear layer(2, 2, rng);
  Matrix x(1, 2);
  x(0, 0) = 1.0f;
  x(0, 1) = 2.0f;
  const Matrix y = layer.Forward(x);
  const Matrix& w = layer.weight();
  EXPECT_NEAR(y(0, 0), w(0, 0) + 2.0f * w(1, 0), 1e-5f);
  EXPECT_NEAR(y(0, 1), w(0, 1) + 2.0f * w(1, 1), 1e-5f);
}

TEST(LinearTest, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Matrix x(5, 4);
  x.GaussianInit(rng, 1.0f);
  Matrix direction(5, 3);
  direction.GaussianInit(rng, 1.0f);

  const auto params = layer.Params();
  auto loss_fn = [&]() {
    layer.ZeroGrad();
    const Matrix y = layer.Forward(x);
    double loss = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      loss += static_cast<double>(y.data()[i]) * direction.data()[i];
    }
    (void)layer.Backward(direction);
    return loss;
  };
  CheckGradients(params, loss_fn);
}

TEST(LinearTest, BackwardReturnsInputGradient) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  Matrix x(1, 3);
  x.GaussianInit(rng, 1.0f);
  (void)layer.Forward(x);
  Matrix dy(1, 2);
  dy(0, 0) = 1.0f;
  const Matrix dx = layer.Backward(dy);
  // dx = dy W^T: with dy = e0, dx = first column of W.
  EXPECT_NEAR(dx(0, 0), layer.weight()(0, 0), 1e-6f);
  EXPECT_NEAR(dx(0, 2), layer.weight()(2, 0), 1e-6f);
}

TEST(MlpTest, ForwardShapesAndHidden) {
  Rng rng(5);
  MlpConfig cfg;
  cfg.in_dim = 6;
  cfg.hidden_dim = 8;
  cfg.out_dim = 3;
  cfg.num_layers = 3;
  cfg.dropout = 0.0f;
  Mlp mlp(cfg, rng);
  Matrix x(4, 6);
  x.GaussianInit(rng, 1.0f);
  const Matrix y = mlp.Forward(x, /*training=*/false);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(mlp.Hidden().rows(), 4);
  EXPECT_EQ(mlp.Hidden().cols(), 8);
  // Hidden is post-ReLU: non-negative.
  for (int64_t i = 0; i < mlp.Hidden().size(); ++i) {
    EXPECT_GE(mlp.Hidden().data()[i], 0.0f);
  }
}

TEST(MlpTest, SingleLayerIsLinear) {
  Rng rng(6);
  MlpConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 99;  // unused
  cfg.out_dim = 2;
  cfg.num_layers = 1;
  Mlp mlp(cfg, rng);
  Matrix x(2, 3);
  x.GaussianInit(rng, 1.0f);
  Matrix x2 = x;
  x2 *= 2.0f;
  const Matrix y1 = mlp.Forward(x, false);
  const Matrix y2 = mlp.Forward(x2, false);
  // Affine: y2 - b = 2 (y1 - b).
  Matrix zero(2, 3);
  const Matrix b = mlp.Forward(zero, false);
  for (int64_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y2.data()[i] - b.data()[i], 2.0f * (y1.data()[i] - b.data()[i]),
                1e-4f);
  }
}

TEST(MlpTest, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  MlpConfig cfg;
  cfg.in_dim = 5;
  cfg.hidden_dim = 7;
  cfg.out_dim = 4;
  cfg.num_layers = 2;
  cfg.dropout = 0.0f;  // determinism for the check
  Mlp mlp(cfg, rng);
  Matrix x(6, 5);
  x.GaussianInit(rng, 1.0f);
  std::vector<int> labels{0, 1, 2, 3, 0, 1};
  std::vector<int32_t> rows{0, 1, 2, 3, 4, 5};

  const auto params = mlp.Params();
  Matrix dlogits;
  auto loss_fn = [&]() {
    mlp.ZeroGrad();
    const Matrix logits = mlp.Forward(x, /*training=*/true);
    const double loss = SoftmaxCrossEntropy(logits, labels, rows, &dlogits);
    (void)mlp.Backward(dlogits);
    return loss;
  };
  CheckGradients(params, loss_fn);
}

TEST(MlpTest, HiddenGradientInjectionFlowsToFirstLayer) {
  Rng rng(8);
  MlpConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 4;
  cfg.out_dim = 2;
  cfg.num_layers = 2;
  cfg.dropout = 0.0f;
  Mlp mlp(cfg, rng);
  Matrix x(2, 3);
  x.GaussianInit(rng, 1.0f);
  (void)mlp.Forward(x, true);

  Matrix dlogits(2, 2);  // zero task gradient
  Matrix dhidden(2, 4, 1.0f);
  mlp.ZeroGrad();
  (void)mlp.Backward(dlogits, &dhidden);
  // First-layer weight gradient must be non-zero (driven only by dhidden).
  const auto params = mlp.Params();
  EXPECT_GT(params[0].grad->FrobeniusNorm(), 0.0);
  // Final layer saw zero gradient.
  EXPECT_DOUBLE_EQ(params[2].grad->FrobeniusNorm(), 0.0);
}

TEST(MlpTest, DropoutActiveOnlyInTraining) {
  Rng rng(9);
  MlpConfig cfg;
  cfg.in_dim = 10;
  cfg.hidden_dim = 50;
  cfg.out_dim = 2;
  cfg.num_layers = 2;
  cfg.dropout = 0.5f;
  Mlp mlp(cfg, rng);
  Matrix x(3, 10);
  x.GaussianInit(rng, 1.0f);
  const Matrix eval1 = mlp.Forward(x, false);
  const Matrix eval2 = mlp.Forward(x, false);
  EXPECT_TRUE(eval1.AllClose(eval2)) << "inference must be deterministic";
  const Matrix train1 = mlp.Forward(x, true);
  const Matrix train2 = mlp.Forward(x, true);
  EXPECT_FALSE(train1.AllClose(train2, 1e-7f))
      << "dropout should randomize training forwards";
}

TEST(LossTest, CrossEntropyMatchesManual) {
  Matrix logits(2, 3);
  logits(0, 0) = 1.0f;
  logits(0, 1) = 0.0f;
  logits(0, 2) = -1.0f;
  logits(1, 0) = 0.0f;
  logits(1, 1) = 2.0f;
  logits(1, 2) = 0.0f;
  Matrix dlogits;
  const double loss =
      SoftmaxCrossEntropy(logits, {0, 1}, {0, 1}, &dlogits);
  // Manual: -log softmax(x)[y].
  const double l0 = -std::log(std::exp(1.0) / (std::exp(1.0) + 1.0 + std::exp(-1.0)));
  const double l1 = -std::log(std::exp(2.0) / (1.0 + std::exp(2.0) + 1.0));
  EXPECT_NEAR(loss, (l0 + l1) / 2.0, 1e-6);
  // Gradient rows sum to zero (softmax minus one-hot).
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 3; ++c) sum += dlogits(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(LossTest, MaskedRowsHaveZeroGradient) {
  Rng rng(10);
  Matrix logits(4, 3);
  logits.GaussianInit(rng, 1.0f);
  Matrix dlogits;
  (void)SoftmaxCrossEntropy(logits, {0, 1, 2, 0}, {1, 3}, &dlogits);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(dlogits(0, c), 0.0f);
    EXPECT_FLOAT_EQ(dlogits(2, c), 0.0f);
  }
  EXPECT_GT(dlogits.FrobeniusNorm(), 0.0);
}

TEST(LossTest, PerfectPredictionLowLoss) {
  Matrix logits(1, 2);
  logits(0, 0) = 20.0f;
  logits(0, 1) = -20.0f;
  Matrix dlogits;
  const double loss = SoftmaxCrossEntropy(logits, {0}, {0}, &dlogits);
  EXPECT_LT(loss, 1e-6);
}

TEST(LossTest, SoftCrossEntropyAgainstUniformTarget) {
  Matrix logits(1, 2);
  logits(0, 0) = 0.0f;
  logits(0, 1) = 0.0f;
  Matrix targets(1, 2, 0.5f);
  Matrix dlogits(1, 2);
  const double loss = SoftCrossEntropy(logits, targets, {0}, 1.0f, &dlogits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  // Prediction already matches the target: zero gradient.
  EXPECT_NEAR(dlogits(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(dlogits(0, 1), 0.0f, 1e-6f);
}

TEST(LossTest, SoftCrossEntropyWeightScalesGradient) {
  Rng rng(11);
  Matrix logits(2, 3);
  logits.GaussianInit(rng, 1.0f);
  Matrix targets(2, 3);
  targets.Fill(1.0f / 3.0f);
  Matrix d1(2, 3), d2(2, 3);
  (void)SoftCrossEntropy(logits, targets, {0, 1}, 1.0f, &d1);
  (void)SoftCrossEntropy(logits, targets, {0, 1}, 2.0f, &d2);
  for (int64_t i = 0; i < d1.size(); ++i) {
    EXPECT_NEAR(d2.data()[i], 2.0f * d1.data()[i], 1e-6f);
  }
}

TEST(LossTest, AccuracyCounting) {
  Matrix logits(3, 2);
  logits(0, 0) = 1.0f;  // pred 0
  logits(1, 1) = 1.0f;  // pred 1
  logits(2, 0) = 1.0f;  // pred 0
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1}, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1}, {}), 0.0);
}

TEST(SgdTest, PlainStepMatchesManual) {
  OptimizerConfig cfg;
  cfg.type = OptimizerType::kSgd;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.0f;
  SgdOptimizer opt(cfg);
  Matrix w(1, 2, 1.0f), g(1, 2, 0.5f);
  std::vector<ParamRef> params{{&w, &g}};
  opt.Step(params);
  EXPECT_NEAR(w(0, 0), 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  OptimizerConfig cfg;
  cfg.type = OptimizerType::kSgd;
  cfg.lr = 1.0f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 0.0f;
  SgdOptimizer opt(cfg);
  Matrix w(1, 1, 0.0f), g(1, 1, 1.0f);
  std::vector<ParamRef> params{{&w, &g}};
  opt.Step(params);  // v=1, w=-1
  EXPECT_NEAR(w(0, 0), -1.0f, 1e-6f);
  opt.Step(params);  // v=1.9, w=-2.9
  EXPECT_NEAR(w(0, 0), -2.9f, 1e-6f);
  opt.Reset();
  opt.Step(params);  // momentum buffer cleared: v=1
  EXPECT_NEAR(w(0, 0), -3.9f, 1e-6f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  OptimizerConfig cfg;
  cfg.type = OptimizerType::kSgd;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.5f;
  SgdOptimizer opt(cfg);
  Matrix w(1, 1, 2.0f), g(1, 1, 0.0f);
  std::vector<ParamRef> params{{&w, &g}};
  opt.Step(params);
  EXPECT_NEAR(w(0, 0), 2.0f - 0.1f * 0.5f * 2.0f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  OptimizerConfig cfg;
  cfg.type = OptimizerType::kAdam;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.0f;
  AdamOptimizer opt(cfg);
  Matrix w(1, 3);
  w(0, 0) = 5.0f;
  w(0, 1) = -3.0f;
  w(0, 2) = 1.0f;
  Matrix g(1, 3);
  std::vector<ParamRef> params{{&w, &g}};
  for (int step = 0; step < 300; ++step) {
    for (int64_t i = 0; i < 3; ++i) g(0, i) = 2.0f * w(0, i);  // d/dw w^2
    opt.Step(params);
  }
  EXPECT_LT(w.FrobeniusNorm(), 0.05);
}

TEST(AdamTest, FirstStepIsLrSizedRegardlessOfGradScale) {
  OptimizerConfig cfg;
  cfg.type = OptimizerType::kAdam;
  cfg.lr = 0.01f;
  cfg.weight_decay = 0.0f;
  for (float scale : {1e-3f, 1.0f, 1e3f}) {
    AdamOptimizer opt(cfg);
    Matrix w(1, 1, 0.0f), g(1, 1, scale);
    std::vector<ParamRef> params{{&w, &g}};
    opt.Step(params);
    EXPECT_NEAR(w(0, 0), -0.01f, 1e-4f) << "scale " << scale;
  }
}

TEST(OptimizerFactoryTest, MakesConfiguredType) {
  OptimizerConfig cfg;
  cfg.type = OptimizerType::kSgd;
  EXPECT_NE(dynamic_cast<SgdOptimizer*>(MakeOptimizer(cfg).get()), nullptr);
  cfg.type = OptimizerType::kAdam;
  EXPECT_NE(dynamic_cast<AdamOptimizer*>(MakeOptimizer(cfg).get()), nullptr);
}

}  // namespace
}  // namespace fedgta
